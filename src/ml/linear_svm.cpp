#include "ml/linear_svm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esl::ml {

LinearSvm::LinearSvm(SvmConfig config) : config_(config) {
  expects(config_.lambda > 0.0, "LinearSvm: lambda must be positive");
  expects(config_.epochs >= 1, "LinearSvm: need at least one epoch");
}

void LinearSvm::fit(const Dataset& data, std::uint64_t seed) {
  data.check();
  expects(data.size() >= 2, "LinearSvm::fit: dataset too small");
  expects(data.positives() > 0 && data.positives() < data.size(),
          "LinearSvm::fit: both classes required");

  const std::size_t n = data.size();
  const std::size_t d = data.feature_count();
  weights_.assign(d, 0.0);
  bias_ = 0.0;

  Rng rng(seed);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }

  std::size_t t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const std::size_t i : order) {
      ++t;
      const Real eta = 1.0 / (config_.lambda * static_cast<Real>(t));
      const auto row = data.x.row(i);
      const Real y = data.y[i] == 1 ? 1.0 : -1.0;
      const Real margin = y * (decision_value(row));

      // Pegasos update: shrink, and step on margin violations.
      const Real shrink = 1.0 - eta * config_.lambda;
      for (auto& w : weights_) {
        w *= shrink;
      }
      if (margin < 1.0) {
        const Real step = eta * y;
        for (std::size_t f = 0; f < d; ++f) {
          weights_[f] += step * row[f];
        }
        bias_ += step;
      }
    }
  }
}

Real LinearSvm::decision_value(std::span<const Real> row) const {
  expects(row.size() == weights_.size() || !is_fitted(),
          "LinearSvm: row width does not match model");
  Real sum = bias_;
  for (std::size_t f = 0; f < weights_.size() && f < row.size(); ++f) {
    sum += weights_[f] * row[f];
  }
  return sum;
}

int LinearSvm::predict(std::span<const Real> row) const {
  expects(is_fitted(), "LinearSvm::predict: not fitted");
  return decision_value(row) >= config_.decision_threshold ? 1 : 0;
}

std::vector<int> LinearSvm::predict_all(const Matrix& rows) const {
  std::vector<int> out(rows.rows());
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    out[r] = predict(rows.row(r));
  }
  return out;
}

}  // namespace esl::ml

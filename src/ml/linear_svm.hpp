// Linear support vector machine trained with the Pegasos SGD scheme.
//
// SVMs are the classic patient-specific seizure detector (Yoo et al. [14]
// in the paper's related work); this implementation provides the
// comparison point for the random-forest choice of [7]
// (bench/ablation_classifier). Deterministic given the seed.
#pragma once

#include <cstdint>

#include "ml/dataset.hpp"

namespace esl::ml {

/// Pegasos hyper-parameters.
struct SvmConfig {
  Real lambda = 1e-3;        // L2 regularization strength
  std::size_t epochs = 20;   // full passes over the training set
  Real decision_threshold = 0.0;  // margin threshold for class 1
};

/// Binary linear SVM (labels 0/1 mapped internally to -1/+1).
class LinearSvm {
 public:
  explicit LinearSvm(SvmConfig config = {});

  /// Trains on the dataset with Pegasos SGD; features should be scaled
  /// (z-scored) by the caller for sensible margins.
  void fit(const Dataset& data, std::uint64_t seed = 1);

  bool is_fitted() const { return !weights_.empty(); }

  /// Signed margin w.x + b.
  Real decision_value(std::span<const Real> row) const;

  /// Hard label using the configured threshold.
  int predict(std::span<const Real> row) const;

  std::vector<int> predict_all(const Matrix& rows) const;

  const RealVector& weights() const { return weights_; }
  Real bias() const { return bias_; }

 private:
  SvmConfig config_;
  RealVector weights_;
  Real bias_ = 0.0;
};

}  // namespace esl::ml

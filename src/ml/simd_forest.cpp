#include "ml/simd_forest.hpp"

#include "common/error.hpp"
#include "common/simd.hpp"

namespace esl::ml {

SimdForest::SimdForest(std::shared_ptr<const CompiledForest> compiled)
    : compiled_(std::move(compiled)) {
  expects(compiled_ != nullptr, "SimdForest: null compiled forest");
  // The AVX2 flavor gathers with signed 32-bit indices over node ids and
  // child pairs (2 * node + 1), so the flat forest must stay below 2^30
  // nodes — far above any real ensemble, checked up front.
  expects(compiled_->node_count() < (std::size_t{1} << 30),
          "SimdForest: forest exceeds 30-bit node addressing");
  const auto left = compiled_->left_children();
  const auto right = compiled_->right_children();
  children_.resize(2 * left.size());
  for (std::size_t n = 0; n < left.size(); ++n) {
    children_[2 * n] = left[n];
    children_[2 * n + 1] = right[n];
  }
}

SimdForest::SimdForest(const RandomForest& forest, RowScaler scaler)
    : SimdForest(
          std::make_shared<const CompiledForest>(forest, std::move(scaler))) {}

void SimdForest::predict_into(Matrix& raw_rows, RealVector& proba,
                              std::vector<int>& labels) const {
  compiled_->scaler().apply(raw_rows);
  FlatForest view = compiled_->view();
  view.children = children_;
  predict_flat_simd(view, raw_rows, proba, labels);
}

void predict_flat_simd(const FlatForest& forest, const Matrix& rows_in,
                       RealVector& proba, std::vector<int>& labels) {
  const std::size_t rows = rows_in.rows();
  expects(forest.children.size() == 2 * forest.node_count(),
          "predict_flat_simd: missing interleaved child pairs");
  // The AVX2 flavor gathers with signed 32-bit indices over node ids and
  // child pairs (2 * node + 1), so the flat forest must stay below 2^30
  // nodes — far above any real ensemble.
  expects(forest.node_count() < (std::size_t{1} << 30),
          "predict_flat_simd: forest exceeds 30-bit node addressing");
  expects(rows == 0 || forest.max_feature < rows_in.cols(),
          "predict_flat_simd: rows too narrow");
  // Block-relative 32-bit gather indices reach 31 * stride + feature in
  // the widest (32-row block) flavor; keep them in signed range.
  expects(32 * rows_in.cols() + forest.max_feature < (std::size_t{1} << 31),
          "predict_flat_simd: row stride too wide for 32-bit gathers");
  proba.assign(rows, 0.0);
  labels.resize(rows);
  if (rows == 0) {
    return;
  }

  const kernels::ForestView view{
      forest.feature.data(),   forest.threshold.data(),
      forest.children.data(),  forest.leaf_value.data(),
      forest.tree_root.data(), forest.tree_depth.data(),
      forest.tree_count()};
  kernels::forest_accumulate(view, rows_in.data().data(), rows,
                             rows_in.cols(), proba.data());

  // Same final division and thresholding as CompiledForest/RandomForest,
  // so probabilities and labels stay bit-identical.
  const auto tree_count_real = static_cast<Real>(forest.tree_count());
  for (std::size_t r = 0; r < rows; ++r) {
    proba[r] /= tree_count_real;
    labels[r] = proba[r] >= forest.decision_threshold ? 1 : 0;
  }
}

}  // namespace esl::ml

#include "ml/simd_forest.hpp"

#include "common/error.hpp"
#include "common/simd.hpp"

namespace esl::ml {

SimdForest::SimdForest(std::shared_ptr<const CompiledForest> compiled)
    : compiled_(std::move(compiled)) {
  expects(compiled_ != nullptr, "SimdForest: null compiled forest");
  // The AVX2 flavor gathers with signed 32-bit indices over node ids and
  // child pairs (2 * node + 1), so the flat forest must stay below 2^30
  // nodes — far above any real ensemble, checked up front.
  expects(compiled_->node_count() < (std::size_t{1} << 30),
          "SimdForest: forest exceeds 30-bit node addressing");
  const auto left = compiled_->left_children();
  const auto right = compiled_->right_children();
  children_.resize(2 * left.size());
  for (std::size_t n = 0; n < left.size(); ++n) {
    children_[2 * n] = left[n];
    children_[2 * n + 1] = right[n];
  }
}

SimdForest::SimdForest(const RandomForest& forest, RowScaler scaler)
    : SimdForest(
          std::make_shared<const CompiledForest>(forest, std::move(scaler))) {}

void SimdForest::predict_into(Matrix& raw_rows, RealVector& proba,
                              std::vector<int>& labels) const {
  const std::size_t rows = raw_rows.rows();
  expects(rows == 0 || compiled_->max_feature() < raw_rows.cols(),
          "SimdForest::predict_into: rows too narrow");
  // Block-relative 32-bit gather indices reach 31 * stride + feature in
  // the widest (32-row block) flavor; keep them in signed range.
  expects(32 * raw_rows.cols() + compiled_->max_feature() <
              (std::size_t{1} << 31),
          "SimdForest::predict_into: row stride too wide for 32-bit gathers");
  compiled_->scaler().apply(raw_rows);
  proba.assign(rows, 0.0);
  labels.resize(rows);
  if (rows == 0) {
    return;
  }

  const kernels::ForestView view{
      compiled_->features().data(),   compiled_->thresholds().data(),
      children_.data(),               compiled_->leaf_values().data(),
      compiled_->tree_roots().data(), compiled_->tree_depths().data(),
      compiled_->tree_count()};
  kernels::forest_accumulate(view, raw_rows.data().data(), rows,
                             raw_rows.cols(), proba.data());

  // Same final division and thresholding as CompiledForest/RandomForest,
  // so probabilities and labels stay bit-identical.
  const auto tree_count_real = static_cast<Real>(compiled_->tree_count());
  const Real threshold = compiled_->decision_threshold();
  for (std::size_t r = 0; r < rows; ++r) {
    proba[r] /= tree_count_real;
    labels[r] = proba[r] >= threshold ? 1 : 0;
  }
}

}  // namespace esl::ml

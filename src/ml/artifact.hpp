// Versioned on-disk model artifacts: CompiledForest serialized as one
// flat binary that serving processes mmap and traverse with zero
// deserialization.
//
// The paper's premise is per-patient personalized models; at fleet scale
// training and serving are separate processes, and a personalized model
// is a *file* — trained anywhere, dropped into a registry directory,
// mapped by every shard that serves the patient. CompiledForest is
// already flat structure-of-arrays storage (see the layout contract in
// ml/compiled_forest.hpp), so the wire format is simply a fixed header
// followed by those arrays back-to-back, each 64-byte aligned:
//
//   ArtifactHeader      magic "ESLFRST1", version, endianness tag,
//                       element widths, counts, decision threshold
//   ----- 64-byte aligned payload, arrays in this order -----
//   feature      u32[node_count]
//   threshold    Real[node_count]
//   left         u32[node_count]
//   right        u32[node_count]
//   children     u32[2*node_count]   interleaved [left,right] pairs,
//                                    pre-built so the SIMD traversal is
//                                    also zero-copy from the mapping
//   leaf_value   Real[node_count]
//   tree_root    u32[tree_count]
//   tree_depth   u32[tree_count]
//   scaler_mean  Real[scaler_width]  baked z-score (absent when 0)
//   scaler_stddev Real[scaler_width]
//
// save_artifact writes the file (to a temp name, then rename, so a
// registry replace is atomic); MappedModel mmaps it (platform/
// mmap_file.hpp) and serves predict_into straight from the mapping —
// bit-identical to the in-memory CompiledForest/SimdForest over the
// same fitted forest, with zero steady-state allocations per call and
// pages faulting in lazily on first traversal.
//
// Trust model: an artifact file is the boundary between training and
// serving processes — replicated between hosts, it is partially-trusted
// *input*, not internal state. Opening therefore validates in two
// passes before any traversal runs: validate(ArtifactHeader) rejects
// truncated, foreign, or version-skewed files from the fixed prologue
// alone, and validate_payload() makes one O(node_count) structural pass
// over the arrays — every child / root index in range, interleaved
// children consistent, feature ids within the header's declared bound,
// per-tree depths within the declared maximum — so a hostile payload
// behind a well-formed header cannot steer predict_flat_compiled /
// predict_flat_simd outside the mapping (traversal itself is
// depth-bounded, so no payload can make it loop forever either). Both
// passes run inside bind_artifact(), the single parsing seam MappedModel
// and the fuzz harness (fuzz/fuzz_artifact.cpp) share.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "ml/compiled_forest.hpp"
#include "ml/inference_model.hpp"
#include "platform/mmap_file.hpp"

namespace esl::ml {

/// First 8 bytes of every artifact: "ESLFRST1" (little-endian u64).
inline constexpr std::uint64_t k_artifact_magic = 0x31545352464C5345ull;
/// Bumped on any layout change; readers reject other versions.
inline constexpr std::uint32_t k_artifact_version = 1;
/// Byte-order tag as written by the producing host. A foreign-endian
/// reader sees it permuted and rejects the file instead of mis-reading
/// every array (artifacts are distributed, not converted).
inline constexpr std::uint32_t k_artifact_endianness = 0x01020304u;
/// Every payload array starts on a 64-byte boundary (cache-line sized;
/// mmap bases are page-aligned, so alignment survives the mapping).
inline constexpr std::size_t k_artifact_alignment = 64;

/// Fixed-size artifact prologue. Plain trivially-copyable scalars only —
/// the header is memcpy'd out of the mapping, never pointer-cast.
struct ArtifactHeader {
  std::uint64_t magic = k_artifact_magic;
  std::uint32_t version = k_artifact_version;
  std::uint32_t endianness = k_artifact_endianness;
  std::uint32_t real_bytes = sizeof(Real);           // element widths are
  std::uint32_t index_bytes = sizeof(std::uint32_t); // part of the format
  std::uint64_t node_count = 0;
  std::uint64_t tree_count = 0;
  /// Baked RowScaler width; 0 = rows arrive pre-scaled.
  std::uint64_t scaler_width = 0;
  /// Exact file size implied by the counts; a mismatch against the real
  /// file length means truncation or trailing garbage.
  std::uint64_t file_bytes = 0;
  Real decision_threshold = 0.5;
  std::uint64_t max_depth = 0;
  std::uint32_t max_feature = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(ArtifactHeader) == 80, "artifact header layout drifted");

/// Byte offset of each payload array (and the total file size) implied
/// by the header counts. Writer and mapper both derive the layout from
/// this one function — there is no second copy of the format.
struct ArtifactLayout {
  std::size_t feature = 0;
  std::size_t threshold = 0;
  std::size_t left = 0;
  std::size_t right = 0;
  std::size_t children = 0;
  std::size_t leaf_value = 0;
  std::size_t tree_root = 0;
  std::size_t tree_depth = 0;
  std::size_t scaler_mean = 0;
  std::size_t scaler_stddev = 0;
  std::size_t total_bytes = 0;
};
ArtifactLayout artifact_layout(std::uint64_t node_count,
                               std::uint64_t tree_count,
                               std::uint64_t scaler_width);

/// Header sanity, in the style of validate(SessionConfig) /
/// validate(ForestConfig): magic, version, endianness, element widths,
/// count bounds, and internal size consistency. Throws InvalidArgument
/// (literal messages only — no heap) before any array is touched.
void validate(const ArtifactHeader& header);
/// Additionally rejects a file whose real length disagrees with the
/// header (truncated download, partial write, trailing garbage).
void validate(const ArtifactHeader& header, std::size_t file_bytes);

/// Structural validation of the payload arrays behind a valid header:
/// every tree_root / left / right / children index addresses a real
/// node, the interleaved children pairs agree with left/right, every
/// feature id is <= header.max_feature (what the predict entry points
/// bound row width against), and every tree_depth is <= header.max_depth.
/// One O(node_count) pass, run once per open — traversal itself stays
/// check-free. Throws InvalidArgument (literal messages) on violation.
void validate_payload(const ArtifactHeader& header, const FlatForest& forest);

/// A validated, borrowed view over one artifact's bytes: the header
/// (copied out — never served from the mapping) plus spans aimed into
/// the payload arrays. Valid only while the underlying bytes live.
struct ArtifactView {
  ArtifactHeader header;
  FlatForest forest;
  std::span<const Real> scaler_mean;
  std::span<const Real> scaler_stddev;
};

/// Parses `bytes` as a complete artifact: header validation (including
/// the exact-length check), span binding, and the structural payload
/// pass — the one place artifact bytes become typed spans. MappedModel
/// binds its mapping through this, and the fuzz harness drives it
/// directly on arbitrary blobs with no file in between. `bytes.data()`
/// must be at least alignof(Real)-aligned (an mmap base always is).
/// Throws InvalidArgument on any malformed input.
ArtifactView bind_artifact(std::span<const std::byte> bytes);

/// Serializes `forest` (arrays + baked scaler) to `path` as one flat
/// artifact. Writes path + ".tmp" first and renames over `path`, so
/// replacing a live artifact is atomic on POSIX — a concurrent
/// ModelRegistry::open never sees a half-written file. Throws DataError
/// on I/O failure.
void save_artifact(const std::string& path, const CompiledForest& forest);

/// Zero-copy deployable model over an mmap'd artifact file.
///
/// Construction maps the file, validates the header, and aims the
/// FlatForest spans into the mapping; no array is copied or even
/// touched, so "loading" a model is O(header) and pages fault in lazily
/// as traversal first needs them. predict_into is bit-identical to the
/// in-memory CompiledForest (kCompiled) or SimdForest (kSimd) built
/// from the same fitted forest, and allocates nothing once the caller's
/// scratch is warm.
///
/// Lifetime: the mapping lives inside this object. Sessions holding the
/// model via shared_ptr (Engine slots, ModelRegistry cache) keep the
/// mapping alive; the file on disk may be replaced (rename) or deleted
/// while mapped — the old pages stay valid until the last holder drops.
class MappedModel final : public InferenceModel {
 public:
  /// Maps `path` read-only. `backend` picks the traversal flavor over
  /// the mapped arrays — the same enum RealtimeDetector::compile /
  /// ml::compile use, so callers choose flavor in exactly one place.
  explicit MappedModel(const std::string& path,
                       InferenceBackend backend = InferenceBackend::kCompiled);

  const char* name() const override {
    return backend_ == InferenceBackend::kSimd ? "mapped+simd" : "mapped";
  }
  std::size_t tree_count() const override { return header_.tree_count; }
  void predict_into(Matrix& raw_rows, RealVector& proba,
                    std::vector<int>& labels) const override;

  const ArtifactHeader& header() const { return header_; }
  const std::string& path() const { return path_; }
  InferenceBackend backend() const { return backend_; }
  std::size_t node_count() const { return header_.node_count; }
  /// Borrowed views straight into the mapping (valid while *this lives).
  const FlatForest& flat() const { return flat_; }
  std::span<const Real> scaler_mean() const { return mean_; }
  std::span<const Real> scaler_stddev() const { return stddev_; }

 private:
  std::string path_;
  InferenceBackend backend_;
  platform::MappedFile file_;
  ArtifactHeader header_;
  FlatForest flat_;  // spans into file_.bytes()
  std::span<const Real> mean_;
  std::span<const Real> stddev_;
};

/// Convenience: map `path` behind the InferenceModel seam (what
/// ModelRegistry::open returns).
std::shared_ptr<const InferenceModel> load_artifact(
    const std::string& path,
    InferenceBackend backend = InferenceBackend::kCompiled);

}  // namespace esl::ml

// Random forest classifier [28] — the supervised real-time detector of
// the e-Glass system [7] that our self-learning pipeline trains.
#pragma once

#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace esl::ml {

/// Forest hyper-parameters.
struct ForestConfig {
  std::size_t tree_count = 32;
  TreeConfig tree;
  /// Bootstrap sample size as a fraction of the training set.
  Real bootstrap_fraction = 1.0;
  /// Decision threshold on the averaged tree probability.
  Real threshold = 0.5;
  /// 0 -> use sqrt(feature_count) features per split (standard default).
  std::size_t features_per_split = 0;
};

/// Throws InvalidArgument unless `config` describes a trainable forest:
/// tree_count >= 1, threshold in (0, 1), bootstrap_fraction in (0, 1].
/// The constructor and fit() both validate through this (mirroring the
/// engine's validate(SessionConfig) pattern), so a bad config is rejected
/// up front rather than surfacing as a degenerate ensemble.
void validate(const ForestConfig& config);

/// Bagged ensemble of CART trees with feature subsampling.
class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {});

  /// Trains on the dataset; deterministic for a given `seed`.
  void fit(const Dataset& data, std::uint64_t seed = 1);

  /// Averaged probability of class 1 across trees.
  Real predict_proba(std::span<const Real> row) const;

  /// Hard label using the configured threshold.
  int predict(std::span<const Real> row) const;

  /// Predicts every row of a matrix with one tree-major pass: iterating
  /// rows inside each tree keeps the node array cache-hot across the
  /// batch. Per row the trees accumulate in the same order (and with the
  /// same final division) as predict_proba, so batched and per-row
  /// predictions are bit-identical.
  std::vector<int> predict_all(const Matrix& rows) const;

  /// Scratch-reusing variant for per-poll streaming callers: `proba` and
  /// `labels` are resized and overwritten, allocating nothing once they
  /// reach their steady-state capacity.
  void predict_all_into(const Matrix& rows, RealVector& proba,
                        std::vector<int>& labels) const;

  bool is_fitted() const { return !trees_.empty(); }
  std::size_t tree_count() const { return trees_.size(); }
  /// One fitted tree (model compilation walks these via
  /// DecisionTree::node).
  const DecisionTree& tree(std::size_t index) const;
  const ForestConfig& config() const { return config_; }

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
};

}  // namespace esl::ml

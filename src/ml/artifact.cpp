#include "ml/artifact.hpp"

#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace esl::ml {

namespace {

constexpr std::size_t align_up(std::size_t offset) {
  return (offset + k_artifact_alignment - 1) & ~(k_artifact_alignment - 1);
}

}  // namespace

ArtifactLayout artifact_layout(std::uint64_t node_count,
                               std::uint64_t tree_count,
                               std::uint64_t scaler_width) {
  const auto n = static_cast<std::size_t>(node_count);
  const auto t = static_cast<std::size_t>(tree_count);
  const auto w = static_cast<std::size_t>(scaler_width);
  ArtifactLayout layout;
  std::size_t offset = align_up(sizeof(ArtifactHeader));
  const auto place = [&offset](std::size_t* slot, std::size_t bytes) {
    *slot = offset;
    offset = align_up(offset + bytes);
  };
  place(&layout.feature, n * sizeof(std::uint32_t));
  place(&layout.threshold, n * sizeof(Real));
  place(&layout.left, n * sizeof(std::uint32_t));
  place(&layout.right, n * sizeof(std::uint32_t));
  place(&layout.children, 2 * n * sizeof(std::uint32_t));
  place(&layout.leaf_value, n * sizeof(Real));
  place(&layout.tree_root, t * sizeof(std::uint32_t));
  place(&layout.tree_depth, t * sizeof(std::uint32_t));
  place(&layout.scaler_mean, w * sizeof(Real));
  place(&layout.scaler_stddev, w * sizeof(Real));
  layout.total_bytes = offset;
  return layout;
}

void validate(const ArtifactHeader& header) {
  expects(header.magic == k_artifact_magic,
          "artifact: bad magic (not an esl model artifact)");
  expects(header.version == k_artifact_version,
          "artifact: unsupported format version");
  expects(header.endianness == k_artifact_endianness,
          "artifact: foreign byte order");
  expects(header.real_bytes == sizeof(Real),
          "artifact: Real element width mismatch");
  expects(header.index_bytes == sizeof(std::uint32_t),
          "artifact: index element width mismatch");
  expects(header.tree_count >= 1, "artifact: empty ensemble");
  expects(header.node_count >= header.tree_count,
          "artifact: fewer nodes than trees");
  expects(header.node_count <= std::numeric_limits<std::uint32_t>::max(),
          "artifact: forest exceeds 32-bit node addressing");
  expects(header.scaler_width <= std::numeric_limits<std::uint32_t>::max(),
          "artifact: implausible scaler width");
  expects(header.scaler_width == 0 ||
              header.max_feature < header.scaler_width,
          "artifact: max_feature outside the baked scaler width");
  expects(header.max_depth <= header.node_count,
          "artifact: max_depth exceeds node count");
  // Written by validate(ForestConfig)-checked fits, so (0, 1); the
  // comparison also rejects NaN.
  expects(header.decision_threshold > 0.0 && header.decision_threshold < 1.0,
          "artifact: decision threshold outside (0, 1)");
  const ArtifactLayout layout = artifact_layout(
      header.node_count, header.tree_count, header.scaler_width);
  expects(header.file_bytes == layout.total_bytes,
          "artifact: header counts disagree with declared file size");
}

void validate(const ArtifactHeader& header, std::size_t file_bytes) {
  validate(header);
  expects(file_bytes == header.file_bytes,
          "artifact: file length mismatch (truncated or trailing bytes)");
}

void validate_payload(const ArtifactHeader& header,
                      const FlatForest& forest) {
  const auto n = static_cast<std::uint32_t>(header.node_count);
  for (std::size_t t = 0; t < forest.tree_root.size(); ++t) {
    expects(forest.tree_root[t] < n,
            "artifact: tree root outside the node arrays");
    expects(forest.tree_depth[t] <= header.max_depth,
            "artifact: tree depth exceeds the declared maximum");
  }
  for (std::size_t i = 0; i < forest.feature.size(); ++i) {
    expects(forest.left[i] < n, "artifact: left child outside the node arrays");
    expects(forest.right[i] < n,
            "artifact: right child outside the node arrays");
    // The SIMD traversal gathers through the interleaved pairs; a
    // mismatch against left/right would silently diverge the two
    // backends (same bytes, different detections), so it is malformed.
    expects(forest.children[2 * i] == forest.left[i] &&
                forest.children[2 * i + 1] == forest.right[i],
            "artifact: interleaved children disagree with left/right");
    // predict_flat_* bound row width against header.max_feature; a
    // feature id past it would gather outside the batch rows.
    expects(forest.feature[i] <= header.max_feature,
            "artifact: feature id exceeds the declared maximum");
  }
}

ArtifactView bind_artifact(std::span<const std::byte> bytes) {
  expects(bytes.size() >= sizeof(ArtifactHeader),
          "artifact: too short for a header");
  const std::byte* base = bytes.data();
  expects(reinterpret_cast<std::uintptr_t>(base) % alignof(Real) == 0,
          "artifact: byte buffer misaligned for Real");

  ArtifactView view;
  // memcpy, not pointer-cast: the header is read once into owned
  // storage; only the payload arrays are served from the bytes.
  std::memcpy(&view.header, base, sizeof(ArtifactHeader));
  validate(view.header, bytes.size());

  const ArtifactLayout layout =
      artifact_layout(view.header.node_count, view.header.tree_count,
                      view.header.scaler_width);
  const auto n = static_cast<std::size_t>(view.header.node_count);
  const auto t = static_cast<std::size_t>(view.header.tree_count);
  const auto w = static_cast<std::size_t>(view.header.scaler_width);
  const auto u32_at = [base](std::size_t offset, std::size_t count) {
    return std::span<const std::uint32_t>(
        reinterpret_cast<const std::uint32_t*>(base + offset), count);
  };
  const auto real_at = [base](std::size_t offset, std::size_t count) {
    return std::span<const Real>(
        reinterpret_cast<const Real*>(base + offset), count);
  };
  view.forest.feature = u32_at(layout.feature, n);
  view.forest.threshold = real_at(layout.threshold, n);
  view.forest.left = u32_at(layout.left, n);
  view.forest.right = u32_at(layout.right, n);
  view.forest.children = u32_at(layout.children, 2 * n);
  view.forest.leaf_value = real_at(layout.leaf_value, n);
  view.forest.tree_root = u32_at(layout.tree_root, t);
  view.forest.tree_depth = u32_at(layout.tree_depth, t);
  view.forest.decision_threshold = view.header.decision_threshold;
  view.forest.max_feature = view.header.max_feature;
  view.scaler_mean = real_at(layout.scaler_mean, w);
  view.scaler_stddev = real_at(layout.scaler_stddev, w);

  validate_payload(view.header, view.forest);
  return view;
}

void save_artifact(const std::string& path, const CompiledForest& forest) {
  const RowScaler& scaler = forest.scaler();
  ensures(scaler.stddev.size() == scaler.mean.size(),
          "save_artifact: scaler mean/stddev width mismatch");

  ArtifactHeader header;
  header.node_count = forest.node_count();
  header.tree_count = forest.tree_count();
  header.scaler_width = scaler.mean.size();
  header.decision_threshold = forest.decision_threshold();
  header.max_depth = forest.max_depth();
  header.max_feature = forest.max_feature();
  const ArtifactLayout layout = artifact_layout(
      header.node_count, header.tree_count, header.scaler_width);
  header.file_bytes = layout.total_bytes;
  // What save writes must be exactly what load accepts.
  validate(header);

  // The interleaved child pairs are part of the format so the SIMD
  // traversal is zero-copy from the mapping too (SimdForest builds this
  // array in memory; the artifact bakes it once at save time).
  const auto left = forest.left_children();
  const auto right = forest.right_children();
  std::vector<std::uint32_t> children(2 * left.size());
  for (std::size_t n = 0; n < left.size(); ++n) {
    children[2 * n] = left[n];
    children[2 * n + 1] = right[n];
  }

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw DataError("save_artifact: cannot create " + tmp);
  }
  std::size_t cursor = 0;
  bool ok = true;
  const auto emit = [&](std::size_t offset, const void* data,
                        std::size_t bytes) {
    // Zero-fill the alignment gap up to `offset`, then the array bytes.
    static constexpr char k_zeros[k_artifact_alignment] = {};
    while (ok && cursor < offset) {
      const std::size_t pad = std::min(offset - cursor, sizeof(k_zeros));
      ok = std::fwrite(k_zeros, 1, pad, f) == pad;
      cursor += pad;
    }
    if (ok && bytes > 0) {
      ok = std::fwrite(data, 1, bytes, f) == bytes;
      cursor += bytes;
    }
  };

  emit(0, &header, sizeof(header));
  emit(layout.feature, forest.features().data(),
       forest.features().size_bytes());
  emit(layout.threshold, forest.thresholds().data(),
       forest.thresholds().size_bytes());
  emit(layout.left, left.data(), left.size_bytes());
  emit(layout.right, right.data(), right.size_bytes());
  emit(layout.children, children.data(),
       children.size() * sizeof(std::uint32_t));
  emit(layout.leaf_value, forest.leaf_values().data(),
       forest.leaf_values().size_bytes());
  emit(layout.tree_root, forest.tree_roots().data(),
       forest.tree_roots().size_bytes());
  emit(layout.tree_depth, forest.tree_depths().data(),
       forest.tree_depths().size_bytes());
  emit(layout.scaler_mean, scaler.mean.data(),
       scaler.mean.size() * sizeof(Real));
  emit(layout.scaler_stddev, scaler.stddev.data(),
       scaler.stddev.size() * sizeof(Real));
  emit(layout.total_bytes, nullptr, 0);  // trailing alignment pad

  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw DataError("save_artifact: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw DataError("save_artifact: cannot rename into " + path);
  }
}

MappedModel::MappedModel(const std::string& path, InferenceBackend backend)
    : path_(path), backend_(backend), file_(path) {
  // One shared parsing seam with the fuzz harness: header validation,
  // span binding, and the structural payload pass all live in
  // bind_artifact (an mmap base is page-aligned, so the alignment
  // precondition always holds here).
  ArtifactView view = bind_artifact(file_.bytes());
  header_ = view.header;
  flat_ = view.forest;
  mean_ = view.scaler_mean;
  stddev_ = view.scaler_stddev;
}

void MappedModel::predict_into(Matrix& raw_rows, RealVector& proba,
                               std::vector<int>& labels) const {
  // Same scaling loop and traversal code paths as the in-memory
  // artifacts, over spans into the mapping: bit-identical by
  // construction.
  scale_rows(mean_, stddev_, raw_rows);
  if (backend_ == InferenceBackend::kSimd) {
    predict_flat_simd(flat_, raw_rows, proba, labels);
  } else {
    predict_flat_compiled(flat_, raw_rows, proba, labels);
  }
}

std::shared_ptr<const InferenceModel> load_artifact(const std::string& path,
                                                    InferenceBackend backend) {
  return std::make_shared<const MappedModel>(path, backend);
}

}  // namespace esl::ml

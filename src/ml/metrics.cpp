#include "ml/metrics.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esl::ml {

Real ConfusionMatrix::sensitivity() const {
  const std::size_t denom = true_positive + false_negative;
  return denom == 0 ? 0.0
                    : static_cast<Real>(true_positive) / static_cast<Real>(denom);
}

Real ConfusionMatrix::specificity() const {
  const std::size_t denom = true_negative + false_positive;
  return denom == 0 ? 0.0
                    : static_cast<Real>(true_negative) / static_cast<Real>(denom);
}

Real ConfusionMatrix::geometric_mean() const {
  return std::sqrt(sensitivity() * specificity());
}

Real ConfusionMatrix::accuracy() const {
  const std::size_t t = total();
  return t == 0 ? 0.0
                : static_cast<Real>(true_positive + true_negative) /
                      static_cast<Real>(t);
}

Real ConfusionMatrix::precision() const {
  const std::size_t denom = true_positive + false_positive;
  return denom == 0 ? 0.0
                    : static_cast<Real>(true_positive) / static_cast<Real>(denom);
}

Real ConfusionMatrix::f1() const {
  const Real p = precision();
  const Real r = sensitivity();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

ConfusionMatrix confusion(std::span<const int> truth,
                          std::span<const int> predicted) {
  expects(truth.size() == predicted.size(),
          "confusion: truth/prediction length mismatch");
  ConfusionMatrix m;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    expects((truth[i] == 0 || truth[i] == 1) &&
                (predicted[i] == 0 || predicted[i] == 1),
            "confusion: labels must be 0 or 1");
    if (truth[i] == 1) {
      (predicted[i] == 1 ? m.true_positive : m.false_negative) += 1;
    } else {
      (predicted[i] == 0 ? m.true_negative : m.false_positive) += 1;
    }
  }
  return m;
}

}  // namespace esl::ml

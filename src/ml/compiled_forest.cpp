#include "ml/compiled_forest.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace esl::ml {

namespace {

/// Rows advanced together through one tree. Large enough for the select
/// loop to vectorize, small enough that a block's node indices stay in
/// registers/L1.
constexpr std::size_t k_block = 16;

}  // namespace

CompiledForest::CompiledForest(const RandomForest& forest, RowScaler scaler)
    : scaler_(std::move(scaler)),
      decision_threshold_(forest.config().threshold) {
  expects(forest.is_fitted(), "CompiledForest: forest not fitted");

  std::size_t total_nodes = 0;
  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    total_nodes += forest.tree(t).node_count();
  }
  expects(total_nodes <= std::numeric_limits<std::uint32_t>::max(),
          "CompiledForest: forest exceeds 32-bit node addressing");

  feature_.reserve(total_nodes);
  threshold_.reserve(total_nodes);
  left_.reserve(total_nodes);
  right_.reserve(total_nodes);
  leaf_value_.reserve(total_nodes);
  tree_root_.reserve(forest.tree_count());
  tree_depth_.reserve(forest.tree_count());

  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    const DecisionTree& tree = forest.tree(t);
    const auto base = static_cast<std::uint32_t>(feature_.size());
    tree_root_.push_back(base);
    tree_depth_.push_back(static_cast<std::uint32_t>(tree.depth()));
    max_depth_ = std::max(max_depth_, tree.depth());
    for (std::size_t n = 0; n < tree.node_count(); ++n) {
      const DecisionTree::NodeView node = tree.node(n);
      const auto self = base + static_cast<std::uint32_t>(n);
      if (node.is_leaf) {
        // Self-loop: `value <= +inf` stays here via left, NaN (compares
        // false against everything) stays here via right.
        feature_.push_back(0);
        threshold_.push_back(std::numeric_limits<Real>::infinity());
        left_.push_back(self);
        right_.push_back(self);
      } else {
        feature_.push_back(static_cast<std::uint32_t>(node.feature));
        max_feature_ =
            std::max(max_feature_, static_cast<std::uint32_t>(node.feature));
        threshold_.push_back(node.threshold);
        left_.push_back(base + static_cast<std::uint32_t>(node.left));
        right_.push_back(base + static_cast<std::uint32_t>(node.right));
      }
      leaf_value_.push_back(node.positive_fraction);
    }
  }
}

FlatForest CompiledForest::view() const {
  FlatForest view;
  view.feature = feature_;
  view.threshold = threshold_;
  view.left = left_;
  view.right = right_;
  view.leaf_value = leaf_value_;
  view.tree_root = tree_root_;
  view.tree_depth = tree_depth_;
  view.decision_threshold = decision_threshold_;
  view.max_feature = max_feature_;
  return view;
}

void CompiledForest::predict_into(Matrix& raw_rows, RealVector& proba,
                                  std::vector<int>& labels) const {
  scaler_.apply(raw_rows);
  predict_flat_compiled(view(), raw_rows, proba, labels);
}

void predict_flat_compiled(const FlatForest& forest, const Matrix& rows_in,
                           RealVector& proba, std::vector<int>& labels) {
  const std::size_t rows = rows_in.rows();
  expects(rows == 0 || forest.max_feature < rows_in.cols(),
          "predict_flat_compiled: rows too narrow");
  proba.assign(rows, 0.0);
  labels.resize(rows);
  if (rows == 0) {
    return;
  }

  const Real* data = rows_in.data().data();
  const std::size_t stride = rows_in.cols();
  const std::uint32_t* feature = forest.feature.data();
  const Real* threshold = forest.threshold.data();
  const std::uint32_t* left = forest.left.data();
  const std::uint32_t* right = forest.right.data();
  const Real* leaf_value = forest.leaf_value.data();

  std::uint32_t node[k_block];
  for (std::size_t t = 0; t < forest.tree_root.size(); ++t) {
    const std::uint32_t root = forest.tree_root[t];
    const std::uint32_t depth = forest.tree_depth[t];
    for (std::size_t r0 = 0; r0 < rows; r0 += k_block) {
      const std::size_t block = std::min(k_block, rows - r0);
      for (std::size_t i = 0; i < block; ++i) {
        node[i] = root;
      }
      const Real* block_rows = data + r0 * stride;
      for (std::uint32_t level = 0; level < depth; ++level) {
        for (std::size_t i = 0; i < block; ++i) {
          // Branch-light select over flat arrays: rows already parked on
          // a leaf self-loop, so the level loop never needs an exit test.
          const std::uint32_t cur = node[i];
          node[i] = block_rows[i * stride + feature[cur]] <= threshold[cur]
                        ? left[cur]
                        : right[cur];
        }
      }
      for (std::size_t i = 0; i < block; ++i) {
        proba[r0 + i] += leaf_value[node[i]];
      }
    }
  }

  // Per row the trees accumulated in ensemble order; divide once, exactly
  // like RandomForest::predict_all_into, so labels stay bit-identical.
  const auto tree_count_real = static_cast<Real>(forest.tree_root.size());
  for (std::size_t r = 0; r < rows; ++r) {
    proba[r] /= tree_count_real;
    labels[r] = proba[r] >= forest.decision_threshold ? 1 : 0;
  }
}

}  // namespace esl::ml

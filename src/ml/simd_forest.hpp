// Explicit-SIMD inference over a CompiledForest's flat arrays.
//
// CompiledForest flattens the ensemble once; SimdForest is a second
// execution strategy over the same immutable arrays: a row-block-major
// traversal (blocks of rows through every tree, then the next block)
// whose branch-free level advance runs through the kernels:: dispatch
// seam — pack compares with gather-lite lane loads on the 128-bit
// flavor, hardware vgatherdpd/vpgatherdd on AVX2 hosts. The only extra
// state it builds is an interleaved [left, right] child-pair array so
// the per-level child pick is one gather of children[2*node + go_right]
// instead of two gathers plus a blend.
//
// Parity contract: traversal decides with the same value <= threshold
// compare (NaN goes right) and accumulates leaf values per row in
// ensemble order, so predict_into is bit-identical to CompiledForest's
// and to the node-hopping interpreter (tests/ml/test_simd_forest.cpp
// asserts this at every SIMD level the host supports).
//
// Like every InferenceModel, the artifact is immutable after
// construction: it shares the CompiledForest read-only and may be
// deployed to live sessions through Engine::swap_model /
// DetectionService::swap_model without pausing ingest.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/compiled_forest.hpp"
#include "ml/inference_model.hpp"

namespace esl::ml {

class SimdForest final : public InferenceModel {
 public:
  /// Wraps an existing compiled artifact (shared read-only; the scaler
  /// baked into it is reused).
  explicit SimdForest(std::shared_ptr<const CompiledForest> compiled);

  /// Convenience: flattens `forest` first, exactly like
  /// CompiledForest(forest, scaler).
  explicit SimdForest(const RandomForest& forest, RowScaler scaler = {});

  const char* name() const override { return "simd"; }
  std::size_t tree_count() const override { return compiled_->tree_count(); }
  void predict_into(Matrix& raw_rows, RealVector& proba,
                    std::vector<int>& labels) const override;

  /// The flat artifact this model traverses.
  const CompiledForest& compiled() const { return *compiled_; }

 private:
  std::shared_ptr<const CompiledForest> compiled_;
  /// children_[2*node + 0] = left, children_[2*node + 1] = right.
  std::vector<std::uint32_t> children_;
};

}  // namespace esl::ml

#include "ml/decision_tree.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace esl::ml {

namespace {

/// Gini impurity of a (pos, total) count.
Real gini(std::size_t positives, std::size_t total) {
  if (total == 0) {
    return 0.0;
  }
  const Real p = static_cast<Real>(positives) / static_cast<Real>(total);
  return 2.0 * p * (1.0 - p);
}

struct SplitCandidate {
  bool valid = false;
  std::size_t feature = 0;
  Real threshold = 0.0;
  Real impurity = std::numeric_limits<Real>::max();
};

}  // namespace

void DecisionTree::fit(const Matrix& x, const std::vector<int>& y, Rng& rng,
                       const TreeConfig& config) {
  std::vector<std::size_t> all(x.rows());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  fit(x, y, all, rng, config);
}

void DecisionTree::fit(const Matrix& x, const std::vector<int>& y,
                       const std::vector<std::size_t>& sample_indices,
                       Rng& rng, const TreeConfig& config) {
  expects(x.rows() == y.size(), "DecisionTree::fit: row/label mismatch");
  expects(!sample_indices.empty(), "DecisionTree::fit: no training samples");
  expects(config.max_depth >= 1, "DecisionTree::fit: max_depth must be >= 1");
  for (const std::size_t i : sample_indices) {
    expects(i < x.rows(), "DecisionTree::fit: sample index out of range");
  }
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> indices = sample_indices;
  build(x, y, indices, 0, indices.size(), 0, rng, config);
  max_split_feature_ = 0;
  for (const Node& node : nodes_) {
    if (!node.is_leaf) {
      max_split_feature_ = std::max(max_split_feature_, node.feature);
    }
  }
}

std::size_t DecisionTree::build(const Matrix& x, const std::vector<int>& y,
                                std::vector<std::size_t>& indices,
                                std::size_t begin, std::size_t end,
                                std::size_t level, Rng& rng,
                                const TreeConfig& config) {
  const std::size_t count = end - begin;
  std::size_t positives = 0;
  for (std::size_t i = begin; i < end; ++i) {
    positives += static_cast<std::size_t>(y[indices[i]]);
  }

  depth_ = std::max(depth_, level);
  const std::size_t node_index = nodes_.size();
  nodes_.push_back(Node{});
  nodes_[node_index].positive_fraction =
      static_cast<Real>(positives) / static_cast<Real>(count);

  const bool pure = (positives == 0 || positives == count);
  if (pure || level + 1 >= config.max_depth ||
      count < config.min_samples_split) {
    return node_index;
  }

  // Feature subset for this split.
  std::vector<std::size_t> features(x.cols());
  for (std::size_t f = 0; f < features.size(); ++f) {
    features[f] = f;
  }
  if (config.features_per_split > 0 &&
      config.features_per_split < features.size()) {
    rng.shuffle(features);
    features.resize(config.features_per_split);
  }

  // Best split search: sort (value, label) per feature, scan boundaries.
  SplitCandidate best;
  std::vector<std::pair<Real, int>> sorted;
  sorted.reserve(count);
  for (const std::size_t f : features) {
    sorted.clear();
    for (std::size_t i = begin; i < end; ++i) {
      sorted.emplace_back(x(indices[i], f), y[indices[i]]);
    }
    std::sort(sorted.begin(), sorted.end());
    std::size_t left_pos = 0;
    for (std::size_t i = 1; i < count; ++i) {
      left_pos += static_cast<std::size_t>(sorted[i - 1].second);
      if (sorted[i].first == sorted[i - 1].first) {
        continue;  // not a boundary
      }
      const std::size_t left_n = i;
      const std::size_t right_n = count - i;
      if (left_n < config.min_samples_leaf ||
          right_n < config.min_samples_leaf) {
        continue;
      }
      const Real impurity =
          (static_cast<Real>(left_n) * gini(left_pos, left_n) +
           static_cast<Real>(right_n) * gini(positives - left_pos, right_n)) /
          static_cast<Real>(count);
      if (impurity < best.impurity) {
        best.valid = true;
        best.feature = f;
        best.threshold = 0.5 * (sorted[i - 1].first + sorted[i].first);
        best.impurity = impurity;
      }
    }
  }

  if (!best.valid) {
    return node_index;  // no informative split found
  }

  // Partition the index range by the chosen split.
  auto middle = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return x(row, best.feature) <= best.threshold; });
  const auto mid =
      static_cast<std::size_t>(middle - indices.begin());
  if (mid == begin || mid == end) {
    return node_index;  // numeric degeneracy; keep the leaf
  }

  nodes_[node_index].is_leaf = false;
  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  const std::size_t left_child =
      build(x, y, indices, begin, mid, level + 1, rng, config);
  nodes_[node_index].left = left_child;
  const std::size_t right_child =
      build(x, y, indices, mid, end, level + 1, rng, config);
  nodes_[node_index].right = right_child;
  return node_index;
}

DecisionTree::NodeView DecisionTree::node(std::size_t index) const {
  expects(index < nodes_.size(), "DecisionTree::node: index out of range");
  const Node& n = nodes_[index];
  return {n.is_leaf, n.feature, n.threshold, n.left, n.right,
          n.positive_fraction};
}

Real DecisionTree::predict_proba(std::span<const Real> row) const {
  expects(!nodes_.empty(), "DecisionTree::predict_proba: tree not fitted");
  std::size_t node = 0;
  while (!nodes_[node].is_leaf) {
    expects(nodes_[node].feature < row.size(),
            "DecisionTree::predict_proba: row too narrow");
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].positive_fraction;
}

int DecisionTree::predict(std::span<const Real> row) const {
  return predict_proba(row) >= 0.5 ? 1 : 0;
}

void DecisionTree::accumulate_proba(const Matrix& rows,
                                    std::vector<Real>& sums) const {
  expects(!nodes_.empty(), "DecisionTree::accumulate_proba: tree not fitted");
  expects(sums.size() == rows.rows(),
          "DecisionTree::accumulate_proba: sums size mismatch");
  expects(rows.rows() == 0 || max_split_feature_ < rows.cols(),
          "DecisionTree::accumulate_proba: rows too narrow");
  const Node* nodes = nodes_.data();
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const Real* row = rows.row(r).data();
    std::size_t node = 0;
    while (!nodes[node].is_leaf) {
      node = row[nodes[node].feature] <= nodes[node].threshold
                 ? nodes[node].left
                 : nodes[node].right;
    }
    sums[r] += nodes[node].positive_fraction;
  }
}

}  // namespace esl::ml

// k-means and k-medoids clustering.
//
// Smart & Chen [17] report that unsupervised scalp-EEG seizure detection
// works best with k-means/k-medoids; we implement both as the baseline
// the paper positions itself against (see bench/ablation_baselines).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

namespace esl::ml {

/// Clustering outcome: one label per row plus representatives.
struct Clustering {
  std::vector<std::size_t> assignment;  // row -> cluster
  Matrix centers;                       // k x F (centroids or medoids)
  Real inertia = 0.0;                   // sum of squared distances to center
  std::size_t iterations = 0;
};

/// Lloyd's k-means with k-means++-style seeding; `restarts` independent
/// runs, best inertia wins. Deterministic for a given rng state.
Clustering kmeans(const Matrix& rows, std::size_t k, Rng& rng,
                  std::size_t max_iterations = 100, std::size_t restarts = 4);

/// Voronoi-iteration k-medoids (PAM-lite): medoids are data rows.
Clustering kmedoids(const Matrix& rows, std::size_t k, Rng& rng,
                    std::size_t max_iterations = 50);

/// Squared Euclidean distance between two rows.
Real squared_distance(std::span<const Real> a, std::span<const Real> b);

}  // namespace esl::ml

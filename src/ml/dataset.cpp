#include "ml/dataset.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace esl::ml {

void Dataset::push_back(std::span<const Real> row, int label) {
  expects(label == 0 || label == 1, "Dataset: labels must be 0 or 1");
  x.append_row(row);
  y.push_back(label);
}

void Dataset::append(const Dataset& other) {
  expects(other.x.rows() == other.y.size(), "Dataset::append: corrupt other");
  for (std::size_t r = 0; r < other.size(); ++r) {
    push_back(other.x.row(r), other.y[r]);
  }
}

std::size_t Dataset::positives() const {
  return static_cast<std::size_t>(std::count(y.begin(), y.end(), 1));
}

void Dataset::check() const {
  expects(x.rows() == y.size(), "Dataset: row/label count mismatch");
  for (const int label : y) {
    expects(label == 0 || label == 1, "Dataset: labels must be 0 or 1");
  }
}

void shuffle_rows(Dataset& data, Rng& rng) {
  data.check();
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  rng.shuffle(order);
  Matrix shuffled_x = data.x.select_rows(order);
  std::vector<int> shuffled_y(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    shuffled_y[i] = data.y[order[i]];
  }
  data.x = std::move(shuffled_x);
  data.y = std::move(shuffled_y);
}

Dataset balance_classes(const Dataset& data, Rng& rng) {
  data.check();
  std::vector<std::size_t> pos;
  std::vector<std::size_t> neg;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.y[i] == 1 ? pos : neg).push_back(i);
  }
  expects(!pos.empty() && !neg.empty(),
          "balance_classes: both classes must be present");
  const std::size_t target = std::min(pos.size(), neg.size());
  rng.shuffle(pos);
  rng.shuffle(neg);
  pos.resize(target);
  neg.resize(target);
  std::vector<std::size_t> keep;
  keep.reserve(2 * target);
  keep.insert(keep.end(), pos.begin(), pos.end());
  keep.insert(keep.end(), neg.begin(), neg.end());
  std::sort(keep.begin(), keep.end());

  Dataset out;
  for (const std::size_t i : keep) {
    out.push_back(data.x.row(i), data.y[i]);
  }
  return out;
}

Split stratified_split(const Dataset& data, Real train_fraction, Rng& rng) {
  data.check();
  expects(train_fraction > 0.0 && train_fraction < 1.0,
          "stratified_split: train_fraction must lie in (0, 1)");
  Split split;
  for (const int label : {0, 1}) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data.y[i] == label) {
        indices.push_back(i);
      }
    }
    rng.shuffle(indices);
    const auto train_count = static_cast<std::size_t>(
        train_fraction * static_cast<Real>(indices.size()));
    for (std::size_t i = 0; i < indices.size(); ++i) {
      (i < train_count ? split.train : split.test)
          .push_back(data.x.row(indices[i]), label);
    }
  }
  return split;
}

}  // namespace esl::ml

// Labeled dataset container and split/balance utilities for the
// supervised real-time detector experiments (§VI-B).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

namespace esl::ml {

/// Binary classification dataset; labels are 0 (non-seizure) / 1 (seizure).
struct Dataset {
  Matrix x;
  std::vector<int> y;

  std::size_t size() const { return y.size(); }
  std::size_t feature_count() const { return x.cols(); }

  /// Appends one labeled row.
  void push_back(std::span<const Real> row, int label);

  /// Appends a whole dataset (same width).
  void append(const Dataset& other);

  /// Number of rows with label 1.
  std::size_t positives() const;

  /// Validates invariants (row count == label count, labels in {0,1}).
  void check() const;
};

/// Deterministically shuffles rows.
void shuffle_rows(Dataset& data, Rng& rng);

/// Balances classes by randomly subsampling the majority class to the
/// minority count ("the training set is balanced", §VI-B).
Dataset balance_classes(const Dataset& data, Rng& rng);

/// Stratified train/test split; `train_fraction` in (0, 1).
struct Split {
  Dataset train;
  Dataset test;
};
Split stratified_split(const Dataset& data, Real train_fraction, Rng& rng);

}  // namespace esl::ml

// Immutable compiled inference artifact: a fitted random forest
// flattened into contiguous structure-of-arrays storage.
//
// A fitted RandomForest keeps each tree as a vector of Node structs and
// classifies by hopping node indices through scattered records — fine for
// a wearable classifying one window, wasteful for a service classifying
// a fleet's batch. CompiledForest is a one-time flattening pass: the
// whole ensemble becomes per-forest feature[], threshold[], left[]/
// right[] and leaf_value[] arrays with all trees packed back-to-back,
// and predict_into traverses batch-major — a block of rows advances
// through one tree level by level, so the inner loop is a branch-light
// gather/select over flat arrays that the compiler can auto-vectorize
// (build with ESL_NATIVE=ON for -march=native codegen). Leaves are
// encoded as self-loops, so a block runs a fixed per-tree level count
// with no per-row early-exit branch.
//
// Parity contract: per row, trees accumulate in the same order and with
// the same final division by tree_count as RandomForest::predict_proba /
// predict_all_into, so compiled outputs are bit-identical to the
// node-hopping interpreter (tests/ml/test_compiled_forest.cpp).
//
// The artifact is immutable after construction and holds no mutable
// state, which is what makes DetectionService::swap_model safe: deploys
// are a shared_ptr swap under the shard lock, never an in-place retrain.
//
// Layout contract (the single source of truth shared with the on-disk
// artifact writer/mapper in ml/artifact.hpp):
//   * one entry per node, all trees back-to-back in ensemble order;
//     children are absolute node indices into the same arrays;
//   * leaves self-loop (left == right == self, feature 0, threshold
//     +inf), so traversal runs a fixed per-tree level count with no
//     is_leaf branch, and NaN feature values go right (compare false);
//   * leaf_value[n] holds every node's positive fraction but is only
//     read once a row parks on a leaf;
//   * tree_root[t] is the absolute index of tree t's root, tree_depth[t]
//     the level count traversal runs for it (0 for a single-leaf tree);
//   * node indices are uint32 (the constructor rejects ensembles past
//     2^32 nodes), thresholds/leaf values are Real (double);
//   * every accessor returns a std::span view — no accessor copies, so
//     a serializer can stream the arrays straight out and a mapper can
//     serve traversal straight from the bytes it loaded.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/inference_model.hpp"
#include "ml/random_forest.hpp"

namespace esl::ml {

/// Borrowed view of one flattened ensemble — the traversal contract all
/// execution strategies share. CompiledForest::view() borrows from its
/// owned vectors, SimdForest adds its interleaved child pairs, and
/// MappedModel (ml/artifact.hpp) points every span straight into an
/// mmap'd artifact; predict_flat_compiled / predict_flat_simd then run
/// identically over any of them. The view owns nothing: whoever holds
/// the arrays must outlive it.
struct FlatForest {
  std::span<const std::uint32_t> feature;
  std::span<const Real> threshold;
  std::span<const std::uint32_t> left;
  std::span<const std::uint32_t> right;
  /// Interleaved pairs: children[2*n + 0] = left, children[2*n + 1] =
  /// right. Required by predict_flat_simd (one gather instead of two +
  /// blend); empty when only the compiled traversal will run.
  std::span<const std::uint32_t> children;
  std::span<const Real> leaf_value;
  std::span<const std::uint32_t> tree_root;
  std::span<const std::uint32_t> tree_depth;
  Real decision_threshold = 0.5;
  std::uint32_t max_feature = 0;

  std::size_t node_count() const { return feature.size(); }
  std::size_t tree_count() const { return tree_root.size(); }
};

/// Batch-major blocked scalar traversal (CompiledForest's strategy) over
/// any flat view: `rows` must already be z-scored. Overwrites
/// `proba`/`labels` (resized; reused scratch allocates nothing warm).
/// Per row, trees accumulate in ensemble order with one final division
/// by tree_count, so outputs are bit-identical to
/// RandomForest::predict_all_into on the source ensemble.
void predict_flat_compiled(const FlatForest& forest, const Matrix& rows,
                           RealVector& proba, std::vector<int>& labels);

/// Explicit-SIMD traversal (SimdForest's strategy) through the
/// kernels:: dispatch seam; requires `forest.children`. Bit-identical to
/// predict_flat_compiled at every dispatch level.
void predict_flat_simd(const FlatForest& forest, const Matrix& rows,
                       RealVector& proba, std::vector<int>& labels);

class CompiledForest final : public InferenceModel {
 public:
  /// Flattens `forest` (must be fitted). `scaler` is baked in and applied
  /// before traversal; pass {} when rows arrive pre-scaled.
  explicit CompiledForest(const RandomForest& forest, RowScaler scaler = {});

  const char* name() const override { return "compiled"; }
  std::size_t tree_count() const override { return tree_root_.size(); }
  void predict_into(Matrix& raw_rows, RealVector& proba,
                    std::vector<int>& labels) const override;

  /// Total flattened nodes across all trees.
  std::size_t node_count() const { return feature_.size(); }
  /// Deepest tree in the ensemble (levels traversed per block).
  std::size_t max_depth() const { return max_depth_; }
  /// Decision threshold on the averaged tree probability.
  Real decision_threshold() const { return decision_threshold_; }
  const RowScaler& scaler() const { return scaler_; }
  /// Widest feature index any split reads (rows must be wider).
  std::uint32_t max_feature() const { return max_feature_; }

  /// The borrowed traversal view over this artifact's arrays (children
  /// left empty — build them only when the SIMD traversal needs them).
  FlatForest view() const;

  // Read-only views of the flat arrays, in flattening order. This is the
  // seam other execution strategies build on (ml::SimdForest's pack
  // traversal, ml/artifact.hpp's on-disk serialization): one flattening
  // pass, many traversals. All accessors return spans — never copies.
  std::span<const std::uint32_t> features() const { return feature_; }
  std::span<const Real> thresholds() const { return threshold_; }
  std::span<const std::uint32_t> left_children() const { return left_; }
  std::span<const std::uint32_t> right_children() const { return right_; }
  std::span<const Real> leaf_values() const { return leaf_value_; }
  std::span<const std::uint32_t> tree_roots() const { return tree_root_; }
  std::span<const std::uint32_t> tree_depths() const { return tree_depth_; }

 private:
  RowScaler scaler_;
  Real decision_threshold_ = 0.5;
  std::size_t max_depth_ = 0;
  std::uint32_t max_feature_ = 0;

  // One entry per node, all trees back-to-back. Children are absolute
  // node indices; leaves self-loop (left == right == self, threshold
  // +inf) so traversal needs no is_leaf branch. leaf_value_ holds every
  // node's positive fraction but is only read once a row parks on a leaf.
  std::vector<std::uint32_t> feature_;
  RealVector threshold_;
  std::vector<std::uint32_t> left_;
  std::vector<std::uint32_t> right_;
  RealVector leaf_value_;

  std::vector<std::uint32_t> tree_root_;
  std::vector<std::uint32_t> tree_depth_;  // levels to run per tree
};

}  // namespace esl::ml

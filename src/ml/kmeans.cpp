#include "ml/kmeans.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace esl::ml {

Real squared_distance(std::span<const Real> a, std::span<const Real> b) {
  expects(a.size() == b.size(), "squared_distance: width mismatch");
  Real sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Real d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

namespace {

/// k-means++ seeding: first center uniform, then proportional to D^2.
std::vector<std::size_t> seed_centers(const Matrix& rows, std::size_t k,
                                      Rng& rng) {
  std::vector<std::size_t> centers;
  centers.push_back(static_cast<std::size_t>(rng.uniform_index(rows.rows())));
  std::vector<Real> dist2(rows.rows(), std::numeric_limits<Real>::max());
  while (centers.size() < k) {
    Real total = 0.0;
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      dist2[r] = std::min(dist2[r],
                          squared_distance(rows.row(r), rows.row(centers.back())));
      total += dist2[r];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a center; pick uniformly.
      centers.push_back(static_cast<std::size_t>(rng.uniform_index(rows.rows())));
      continue;
    }
    Real target = rng.uniform() * total;
    std::size_t chosen = rows.rows() - 1;
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      target -= dist2[r];
      if (target <= 0.0) {
        chosen = r;
        break;
      }
    }
    centers.push_back(chosen);
  }
  return centers;
}

Clustering kmeans_single(const Matrix& rows, std::size_t k, Rng& rng,
                         std::size_t max_iterations) {
  Clustering result;
  result.centers = Matrix(k, rows.cols());
  const std::vector<std::size_t> seeds = seed_centers(rows, k, rng);
  for (std::size_t c = 0; c < k; ++c) {
    const auto src = rows.row(seeds[c]);
    std::copy(src.begin(), src.end(), result.centers.row(c).begin());
  }

  result.assignment.assign(rows.rows(), 0);
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    // Assignment step.
    bool changed = false;
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      std::size_t best = 0;
      Real best_d = std::numeric_limits<Real>::max();
      for (std::size_t c = 0; c < k; ++c) {
        const Real d = squared_distance(rows.row(r), result.centers.row(c));
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[r] != best) {
        result.assignment[r] = best;
        changed = true;
      }
    }
    // Update step.
    Matrix sums(k, rows.cols(), 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      const std::size_t c = result.assignment[r];
      ++counts[c];
      const auto src = rows.row(r);
      auto dst = sums.row(c);
      for (std::size_t f = 0; f < rows.cols(); ++f) {
        dst[f] += src[f];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        continue;  // empty cluster keeps its previous center
      }
      auto dst = result.centers.row(c);
      const auto src = sums.row(c);
      for (std::size_t f = 0; f < rows.cols(); ++f) {
        dst[f] = src[f] / static_cast<Real>(counts[c]);
      }
    }
    if (!changed && iteration > 0) {
      break;
    }
  }

  result.inertia = 0.0;
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    result.inertia +=
        squared_distance(rows.row(r), result.centers.row(result.assignment[r]));
  }
  return result;
}

}  // namespace

Clustering kmeans(const Matrix& rows, std::size_t k, Rng& rng,
                  std::size_t max_iterations, std::size_t restarts) {
  expects(k >= 1 && k <= rows.rows(), "kmeans: k must lie in [1, rows]");
  expects(restarts >= 1, "kmeans: need at least one restart");
  Clustering best;
  bool first = true;
  for (std::size_t attempt = 0; attempt < restarts; ++attempt) {
    Clustering candidate = kmeans_single(rows, k, rng, max_iterations);
    if (first || candidate.inertia < best.inertia) {
      best = std::move(candidate);
      first = false;
    }
  }
  return best;
}

Clustering kmedoids(const Matrix& rows, std::size_t k, Rng& rng,
                    std::size_t max_iterations) {
  expects(k >= 1 && k <= rows.rows(), "kmedoids: k must lie in [1, rows]");
  std::vector<std::size_t> medoids = seed_centers(rows, k, rng);

  Clustering result;
  result.assignment.assign(rows.rows(), 0);
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    // Assignment.
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      std::size_t best = 0;
      Real best_d = std::numeric_limits<Real>::max();
      for (std::size_t c = 0; c < k; ++c) {
        const Real d = squared_distance(rows.row(r), rows.row(medoids[c]));
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      result.assignment[r] = best;
    }
    // Medoid update: the member minimizing intra-cluster distance.
    bool changed = false;
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<std::size_t> members;
      for (std::size_t r = 0; r < rows.rows(); ++r) {
        if (result.assignment[r] == c) {
          members.push_back(r);
        }
      }
      if (members.empty()) {
        continue;
      }
      std::size_t best_medoid = medoids[c];
      Real best_cost = std::numeric_limits<Real>::max();
      for (const std::size_t candidate : members) {
        Real cost = 0.0;
        for (const std::size_t other : members) {
          cost += squared_distance(rows.row(candidate), rows.row(other));
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_medoid = candidate;
        }
      }
      if (best_medoid != medoids[c]) {
        medoids[c] = best_medoid;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }

  result.centers = Matrix(k, rows.cols());
  for (std::size_t c = 0; c < k; ++c) {
    const auto src = rows.row(medoids[c]);
    std::copy(src.begin(), src.end(), result.centers.row(c).begin());
  }
  result.inertia = 0.0;
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    result.inertia +=
        squared_distance(rows.row(r), result.centers.row(result.assignment[r]));
  }
  return result;
}

}  // namespace esl::ml

// Classification metrics used in §VI-B: sensitivity, specificity and
// their geometric mean.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace esl::ml {

/// Binary confusion matrix (positive class = 1 = seizure).
struct ConfusionMatrix {
  std::size_t true_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  std::size_t total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }

  /// TP / (TP + FN); 0 when no positives exist.
  Real sensitivity() const;
  /// TN / (TN + FP); 0 when no negatives exist.
  Real specificity() const;
  /// sqrt(sensitivity * specificity) — the paper's headline metric.
  Real geometric_mean() const;
  /// (TP + TN) / total.
  Real accuracy() const;
  /// TP / (TP + FP); 0 when nothing was predicted positive.
  Real precision() const;
  /// Harmonic mean of precision and sensitivity.
  Real f1() const;
};

/// Tallies a confusion matrix from parallel label vectors.
ConfusionMatrix confusion(std::span<const int> truth,
                          std::span<const int> predicted);

}  // namespace esl::ml

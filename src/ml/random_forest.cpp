#include "ml/random_forest.hpp"

#include <cmath>

#include "common/error.hpp"

namespace esl::ml {

void validate(const ForestConfig& config) {
  expects(config.tree_count >= 1,
          "ForestConfig: need at least one tree");
  expects(config.bootstrap_fraction > 0.0 && config.bootstrap_fraction <= 1.0,
          "ForestConfig: bootstrap_fraction must lie in (0, 1]");
  expects(config.threshold > 0.0 && config.threshold < 1.0,
          "ForestConfig: threshold must lie in (0, 1)");
}

RandomForest::RandomForest(ForestConfig config) : config_(config) {
  validate(config_);
}

void RandomForest::fit(const Dataset& data, std::uint64_t seed) {
  validate(config_);
  data.check();
  expects(data.size() >= 2, "RandomForest::fit: dataset too small");

  TreeConfig tree_config = config_.tree;
  if (config_.features_per_split == 0) {
    tree_config.features_per_split = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<Real>(data.feature_count()))));
  } else {
    tree_config.features_per_split = config_.features_per_split;
  }

  const auto bootstrap_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.bootstrap_fraction *
                                  static_cast<Real>(data.size())));

  trees_.assign(config_.tree_count, DecisionTree{});
  Rng root(seed);
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    Rng tree_rng = root.fork(t);
    std::vector<std::size_t> bootstrap(bootstrap_size);
    for (auto& index : bootstrap) {
      index = static_cast<std::size_t>(tree_rng.uniform_index(data.size()));
    }
    trees_[t].fit(data.x, data.y, bootstrap, tree_rng, tree_config);
  }
}

const DecisionTree& RandomForest::tree(std::size_t index) const {
  expects(index < trees_.size(), "RandomForest::tree: index out of range");
  return trees_[index];
}

Real RandomForest::predict_proba(std::span<const Real> row) const {
  expects(is_fitted(), "RandomForest::predict_proba: not fitted");
  Real sum = 0.0;
  for (const auto& tree : trees_) {
    sum += tree.predict_proba(row);
  }
  return sum / static_cast<Real>(trees_.size());
}

int RandomForest::predict(std::span<const Real> row) const {
  return predict_proba(row) >= config_.threshold ? 1 : 0;
}

std::vector<int> RandomForest::predict_all(const Matrix& rows) const {
  std::vector<int> out;
  RealVector proba;
  predict_all_into(rows, proba, out);
  return out;
}

void RandomForest::predict_all_into(const Matrix& rows, RealVector& proba,
                                    std::vector<int>& labels) const {
  expects(is_fitted(), "RandomForest::predict_all_into: not fitted");
  proba.assign(rows.rows(), 0.0);
  for (const auto& tree : trees_) {
    tree.accumulate_proba(rows, proba);
  }
  const Real tree_count = static_cast<Real>(trees_.size());
  labels.resize(rows.rows());
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    proba[r] /= tree_count;  // same op as predict_proba: bit-equal paths
    labels[r] = proba[r] >= config_.threshold ? 1 : 0;
  }
}

}  // namespace esl::ml

// CART decision tree (Gini impurity) — the base learner of the random
// forest classifier used by the real-time detector [7, 28].
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

namespace esl::ml {

/// Tree growth limits.
struct TreeConfig {
  std::size_t max_depth = 16;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per split; 0 means all (no subsampling).
  std::size_t features_per_split = 0;
};

/// Binary CART classifier.
class DecisionTree {
 public:
  /// Grows the tree on (x, y) using `sample_indices` (with repetitions
  /// allowed, enabling bootstrap training). `rng` drives feature
  /// subsampling.
  void fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<std::size_t>& sample_indices, Rng& rng,
           const TreeConfig& config = {});

  /// Convenience fit over all rows.
  void fit(const Matrix& x, const std::vector<int>& y, Rng& rng,
           const TreeConfig& config = {});

  /// Probability that `row` belongs to class 1 (leaf class fraction).
  Real predict_proba(std::span<const Real> row) const;

  /// Hard label with a 0.5 threshold.
  int predict(std::span<const Real> row) const;

  /// Batched traversal: adds this tree's class-1 probability of every row
  /// of `rows` into `sums` (sums.size() == rows.rows()). Iterating rows
  /// inside one tree keeps the node array cache-hot, which is what makes
  /// the engine's batched inference faster than per-window calls.
  void accumulate_proba(const Matrix& rows, std::vector<Real>& sums) const;

  /// Number of nodes (0 before fit).
  std::size_t node_count() const { return nodes_.size(); }
  /// Maximum depth reached while growing.
  std::size_t depth() const { return depth_; }

  /// Read-only view of one fitted node, for model compilation
  /// (ml/compiled_forest.hpp): flattening passes walk the tree without
  /// depending on the node layout. `left`/`right` are indices into this
  /// tree's own node array; meaningless when `is_leaf`.
  struct NodeView {
    bool is_leaf = true;
    std::size_t feature = 0;
    Real threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
    Real positive_fraction = 0.0;
  };
  NodeView node(std::size_t index) const;

 private:
  struct Node {
    bool is_leaf = true;
    std::size_t feature = 0;
    Real threshold = 0.0;
    std::size_t left = 0;   // index into nodes_
    std::size_t right = 0;  // index into nodes_
    Real positive_fraction = 0.0;
  };

  std::size_t build(const Matrix& x, const std::vector<int>& y,
                    std::vector<std::size_t>& indices, std::size_t begin,
                    std::size_t end, std::size_t level, Rng& rng,
                    const TreeConfig& config);

  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
  /// Highest feature index any split uses; lets the batched traversal
  /// validate the row width once instead of per node hop.
  std::size_t max_split_feature_ = 0;
};

}  // namespace esl::ml

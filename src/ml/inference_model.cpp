#include "ml/inference_model.hpp"

#include "common/error.hpp"

namespace esl::ml {

void RowScaler::apply(Matrix& raw_rows) const {
  if (empty()) {
    return;
  }
  expects(stddev.size() == mean.size(),
          "RowScaler::apply: mean/stddev size mismatch");
  expects(raw_rows.cols() == mean.size(),
          "RowScaler::apply: row width mismatch");
  for (std::size_t r = 0; r < raw_rows.rows(); ++r) {
    const auto row = raw_rows.row(r);
    apply_row(row, row);
  }
}

void RowScaler::apply_row(std::span<const Real> raw,
                          std::span<Real> out) const {
  const Real* m = mean.data();
  const Real* s = stddev.data();
  for (std::size_t f = 0; f < raw.size(); ++f) {
    const Real centered = raw[f] - m[f];
    out[f] = s[f] > 0.0 ? centered / s[f] : 0.0;
  }
}

ForestModel::ForestModel(std::shared_ptr<const RandomForest> forest,
                         RowScaler scaler)
    : forest_(std::move(forest)), scaler_(std::move(scaler)) {
  expects(forest_ != nullptr && forest_->is_fitted(),
          "ForestModel: needs a fitted forest");
}

void ForestModel::predict_into(Matrix& raw_rows, RealVector& proba,
                               std::vector<int>& labels) const {
  scaler_.apply(raw_rows);
  forest_->predict_all_into(raw_rows, proba, labels);
}

}  // namespace esl::ml

#include "ml/inference_model.hpp"

#include "common/error.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/simd_forest.hpp"

namespace esl::ml {

void scale_rows(std::span<const Real> mean, std::span<const Real> stddev,
                Matrix& raw_rows) {
  if (mean.empty()) {
    return;
  }
  expects(stddev.size() == mean.size(),
          "scale_rows: mean/stddev size mismatch");
  expects(raw_rows.cols() == mean.size(), "scale_rows: row width mismatch");
  const Real* m = mean.data();
  const Real* s = stddev.data();
  for (std::size_t r = 0; r < raw_rows.rows(); ++r) {
    const auto row = raw_rows.row(r);
    for (std::size_t f = 0; f < row.size(); ++f) {
      const Real centered = row[f] - m[f];
      row[f] = s[f] > 0.0 ? centered / s[f] : 0.0;
    }
  }
}

void RowScaler::apply(Matrix& raw_rows) const {
  scale_rows(mean, stddev, raw_rows);
}

void RowScaler::apply_row(std::span<const Real> raw,
                          std::span<Real> out) const {
  const Real* m = mean.data();
  const Real* s = stddev.data();
  for (std::size_t f = 0; f < raw.size(); ++f) {
    const Real centered = raw[f] - m[f];
    out[f] = s[f] > 0.0 ? centered / s[f] : 0.0;
  }
}

std::shared_ptr<const InferenceModel> compile(const RandomForest& forest,
                                              RowScaler scaler,
                                              InferenceBackend backend) {
  auto flat =
      std::make_shared<const CompiledForest>(forest, std::move(scaler));
  if (backend == InferenceBackend::kSimd) {
    return std::make_shared<const SimdForest>(std::move(flat));
  }
  return flat;
}

ForestModel::ForestModel(std::shared_ptr<const RandomForest> forest,
                         RowScaler scaler)
    : forest_(std::move(forest)), scaler_(std::move(scaler)) {
  expects(forest_ != nullptr && forest_->is_fitted(),
          "ForestModel: needs a fitted forest");
}

void ForestModel::predict_into(Matrix& raw_rows, RealVector& proba,
                               std::vector<int>& labels) const {
  scaler_.apply(raw_rows);
  forest_->predict_all_into(raw_rows, proba, labels);
}

}  // namespace esl::ml

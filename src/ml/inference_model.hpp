// Deployable inference artifacts for the streaming engine.
//
// The engine (engine/engine.hpp) predicts only through this seam: an
// InferenceModel packages everything one batched prediction needs — the
// per-feature z-score fitted alongside the classifier, and the classifier
// itself — behind a single predict_into call over raw feature rows. That
// makes fleet models, freshly retrained personal detectors, and compiled
// artifacts (compiled_forest.hpp) interchangeable, shareable across
// shards, and hot-swappable mid-stream (DetectionService::swap_model);
// SIMD or GPU execution plugs in as just another implementation.
#pragma once

#include <memory>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "ml/random_forest.hpp"

namespace esl::ml {

/// Per-feature z-score parameters baked into a deployable model. This is
/// the single row-major scaling implementation — the detector's
/// scale_rows_in_place / predict_row delegate here — and each element
/// gets the exact features::apply_zscore arithmetic, so raw rows scaled
/// by any path classify bit-identically to the offline column-major one.
struct RowScaler {
  RealVector mean;
  RealVector stddev;

  bool empty() const { return mean.empty(); }
  /// z-scores raw feature rows in place (no-op when empty()).
  void apply(Matrix& raw_rows) const;
  /// z-scores one raw row into `out` (out.size() == raw.size()).
  void apply_row(std::span<const Real> raw, std::span<Real> out) const;
};

/// z-scores raw feature rows in place from borrowed per-feature
/// mean/stddev spans (no-op when `mean` is empty). This is the one
/// row-major scaling loop: RowScaler::apply delegates here, and the
/// mmap'd artifacts (ml/artifact.hpp) call it with spans pointing
/// straight into the mapping — no RowScaler copy, no allocation.
void scale_rows(std::span<const Real> mean, std::span<const Real> stddev,
                Matrix& raw_rows);

/// Execution strategy for a deployable artifact built from a fitted
/// forest (RealtimeDetector::compile picks the implementation):
///  * kCompiled — CompiledForest's flat batch-major traversal, relying
///    on the compiler's auto-vectorization (ESL_NATIVE=ON);
///  * kSimd — SimdForest's explicit pack traversal through the runtime-
///    dispatched kernels:: seam (AVX2 hardware gathers when available).
/// Both are bit-identical to the node-hopping interpreter.
enum class InferenceBackend { kCompiled, kSimd };

/// Immutable deployable model — the only interface the engine calls for
/// prediction. Implementations hold no mutable state, so a fitted model
/// may be shared read-only across shards and their worker threads.
class InferenceModel {
 public:
  virtual ~InferenceModel() = default;

  virtual const char* name() const = 0;
  /// Trees in the underlying ensemble (diagnostics/benchmarks).
  virtual std::size_t tree_count() const = 0;

  /// Classifies every row of `raw_rows`: z-scores the rows in place with
  /// the baked-in scaler, then overwrites `proba`/`labels` (resized;
  /// reused scratch allocates nothing once warm). Rows are *raw* feature
  /// rows — the caller never scales.
  virtual void predict_into(Matrix& raw_rows, RealVector& proba,
                            std::vector<int>& labels) const = 0;
};

/// The one factory seam for deployable artifacts built from a fitted
/// forest: flattens `forest` once (scaler baked in) and wraps it in the
/// chosen execution strategy — kCompiled returns the flat CompiledForest
/// itself, kSimd wraps it in SimdForest's pack traversal. Every caller
/// that picks a flavor (RealtimeDetector::compile, the on-disk
/// ModelRegistry's mapped loads, benches) routes through this enum in
/// exactly one place; all backends classify bit-identically.
std::shared_ptr<const InferenceModel> compile(const RandomForest& forest,
                                              RowScaler scaler,
                                              InferenceBackend backend);

/// Thin adapter: an InferenceModel over a fitted RandomForest (shared,
/// immutable) plus the scaler it was trained with. This is the baseline
/// node-hopping implementation; CompiledForest is the flat one.
class ForestModel final : public InferenceModel {
 public:
  ForestModel(std::shared_ptr<const RandomForest> forest, RowScaler scaler);

  const char* name() const override { return "forest"; }
  std::size_t tree_count() const override { return forest_->tree_count(); }
  void predict_into(Matrix& raw_rows, RealVector& proba,
                    std::vector<int>& labels) const override;

  const RandomForest& forest() const { return *forest_; }
  const RowScaler& scaler() const { return scaler_; }

 private:
  std::shared_ptr<const RandomForest> forest_;
  RowScaler scaler_;
};

}  // namespace esl::ml

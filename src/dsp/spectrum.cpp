#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "dsp/fft.hpp"
#include "dsp/workspace.hpp"

namespace esl::dsp {

void periodogram_into(std::span<const Real> signal, Real sample_rate_hz,
                      Workspace& workspace, Psd& out, WindowKind window) {
  expects(signal.size() >= 2, "periodogram: need at least 2 samples");
  expects(sample_rate_hz > 0.0, "periodogram: sample rate must be positive");

  const std::size_t n = signal.size();
  const RealVector& w = workspace.window_cache(window, n);
  RealVector& tapered = workspace.tapered;
  tapered.resize(n);
  kernels::taper_multiply(signal.data(), w.data(), tapered.data(), n);

  rfft_into(tapered, workspace, workspace.spectrum);
  const ComplexVector& spectrum = workspace.spectrum;
  const Real scale = 1.0 / (sample_rate_hz * workspace.window_power_sum);

  out.frequency.resize(spectrum.size());
  out.density.resize(spectrum.size());
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    out.frequency[k] =
        static_cast<Real>(k) * sample_rate_hz / static_cast<Real>(n);
  }
  // |X|^2 * scale with one-sided doubling (all bins except DC and, for
  // even n, Nyquist) — the vectorized kernel keeps the scalar op order.
  kernels::power_density(spectrum.data(), spectrum.size(), scale, n % 2 == 0,
                         out.density.data());
}

Psd periodogram(std::span<const Real> signal, Real sample_rate_hz,
                WindowKind window) {
  Workspace workspace;
  Psd psd;
  periodogram_into(signal, sample_rate_hz, workspace, psd, window);
  return psd;
}

void welch_into(std::span<const Real> signal, Real sample_rate_hz,
                std::size_t segment_length, Workspace& workspace, Psd& out,
                Real overlap, WindowKind window) {
  expects(segment_length >= 2, "welch: segment_length must be >= 2");
  expects(overlap >= 0.0 && overlap < 1.0, "welch: overlap must lie in [0, 1)");
  if (signal.size() <= segment_length) {
    periodogram_into(signal, sample_rate_hz, workspace, out, window);
    return;
  }
  const auto hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(static_cast<Real>(segment_length) * (1.0 - overlap))));

  std::size_t segments = 0;
  for (std::size_t start = 0; start + segment_length <= signal.size();
       start += hop) {
    if (segments == 0) {
      // First segment lands directly in the accumulator (frequency axis
      // included), exactly like the allocating path's initial copy.
      periodogram_into(signal.subspan(start, segment_length), sample_rate_hz,
                       workspace, out, window);
    } else {
      periodogram_into(signal.subspan(start, segment_length), sample_rate_hz,
                       workspace, workspace.segment_psd, window);
      for (std::size_t k = 0; k < out.density.size(); ++k) {
        out.density[k] += workspace.segment_psd.density[k];
      }
    }
    ++segments;
  }
  for (auto& v : out.density) {
    v /= static_cast<Real>(segments);
  }
}

Psd welch(std::span<const Real> signal, Real sample_rate_hz,
          std::size_t segment_length, Real overlap, WindowKind window) {
  Workspace workspace;
  Psd accumulated;
  welch_into(signal, sample_rate_hz, segment_length, workspace, accumulated,
             overlap, window);
  return accumulated;
}

Real band_power(const Psd& psd, Band band) {
  expects(band.low_hz < band.high_hz, "band_power: empty band");
  const Real df = psd.bin_width();
  if (df <= 0.0) {
    return 0.0;
  }
  Real power = 0.0;
  for (std::size_t k = 0; k < psd.frequency.size(); ++k) {
    const Real f = psd.frequency[k];
    if (f >= band.low_hz && f < band.high_hz) {
      power += psd.density[k] * df;
    }
  }
  return power;
}

Real total_power(const Psd& psd) {
  if (psd.frequency.empty()) {
    return 0.0;
  }
  return band_power(psd, Band{0.5, psd.frequency.back() + psd.bin_width()});
}

Real relative_band_power(const Psd& psd, Band band) {
  const Real total = total_power(psd);
  if (total <= 0.0) {
    return 0.0;
  }
  return band_power(psd, band) / total;
}

Real spectral_edge_frequency(const Psd& psd, Real fraction) {
  expects(fraction > 0.0 && fraction <= 1.0,
          "spectral_edge_frequency: fraction must lie in (0, 1]");
  const Real total = total_power(psd);
  if (total <= 0.0) {
    return 0.0;
  }
  const Real df = psd.bin_width();
  Real cumulative = 0.0;
  for (std::size_t k = 0; k < psd.frequency.size(); ++k) {
    if (psd.frequency[k] < 0.5) {
      continue;
    }
    cumulative += psd.density[k] * df;
    if (cumulative >= fraction * total) {
      return psd.frequency[k];
    }
  }
  return psd.frequency.back();
}

Real peak_frequency(const Psd& psd) {
  Real best_f = 0.0;
  Real best_v = -1.0;
  for (std::size_t k = 0; k < psd.frequency.size(); ++k) {
    if (psd.frequency[k] < 0.5) {
      continue;
    }
    if (psd.density[k] > best_v) {
      best_v = psd.density[k];
      best_f = psd.frequency[k];
    }
  }
  return best_f;
}

Real spectral_entropy(const Psd& psd) {
  Real total = 0.0;
  for (const Real v : psd.density) {
    total += v;
  }
  if (total <= 0.0) {
    return 0.0;
  }
  Real entropy = 0.0;
  for (const Real v : psd.density) {
    if (v > 0.0) {
      const Real p = v / total;
      entropy -= p * std::log(p);
    }
  }
  return entropy;
}

}  // namespace esl::dsp

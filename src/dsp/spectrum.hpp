// Power spectral density estimation and EEG band-power features.
//
// The paper's 10-feature set (§III-A) uses total and relative power in the
// clinical delta [0.5, 4] Hz and theta [4, 8] Hz bands; the e-Glass-style
// 54-feature set additionally uses alpha/beta/gamma powers and spectral
// shape descriptors.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "dsp/window.hpp"

namespace esl::dsp {

class Workspace;

/// One-sided PSD estimate: frequencies in Hz and density in unit^2/Hz.
struct Psd {
  RealVector frequency;
  RealVector density;

  /// Frequency resolution (bin width) in Hz.
  Real bin_width() const {
    return frequency.size() >= 2 ? frequency[1] - frequency[0] : 0.0;
  }
};

/// Windowed periodogram of the whole segment (one-sided, density scaling).
Psd periodogram(std::span<const Real> signal, Real sample_rate_hz,
                WindowKind window = WindowKind::kHann);

/// Welch PSD: averaged periodograms of `segment_length`-sample segments
/// with `overlap` in [0, 1). Falls back to a single periodogram when the
/// signal is shorter than one segment.
Psd welch(std::span<const Real> signal, Real sample_rate_hz,
          std::size_t segment_length, Real overlap = 0.5,
          WindowKind window = WindowKind::kHann);

// Workspace-threaded overloads: bit-identical to periodogram()/welch()
// but the taper, tapered copy, and FFT temporaries come from `workspace`
// and the PSD is written into the caller-owned `out` (which may be
// workspace.psd), so a warm call performs no heap allocation. The
// band-power readers below (band_power, total_power, ...) are already
// allocation-free over any caller-owned Psd. See dsp/workspace.hpp.

/// periodogram() into a caller-owned Psd.
void periodogram_into(std::span<const Real> signal, Real sample_rate_hz,
                      Workspace& workspace, Psd& out,
                      WindowKind window = WindowKind::kHann);

/// welch() into a caller-owned Psd.
void welch_into(std::span<const Real> signal, Real sample_rate_hz,
                std::size_t segment_length, Workspace& workspace, Psd& out,
                Real overlap = 0.5, WindowKind window = WindowKind::kHann);

/// Frequency band in Hz, [low, high).
struct Band {
  Real low_hz = 0.0;
  Real high_hz = 0.0;
};

/// Clinical EEG bands used throughout the paper.
namespace bands {
inline constexpr Band kDelta{0.5, 4.0};
inline constexpr Band kTheta{4.0, 8.0};
inline constexpr Band kAlpha{8.0, 13.0};
inline constexpr Band kBeta{13.0, 30.0};
inline constexpr Band kGamma{30.0, 100.0};
}  // namespace bands

/// Integral of the PSD over the band (rectangle rule over the bins whose
/// center frequency falls in [low, high)).
Real band_power(const Psd& psd, Band band);

/// Total power over [0.5 Hz, Nyquist); the conventional EEG reference for
/// relative band power (excludes the DC/drift region).
Real total_power(const Psd& psd);

/// band_power / total_power; returns 0 when total power vanishes.
Real relative_band_power(const Psd& psd, Band band);

/// Frequency below which `fraction` of the total (one-sided) power lies.
Real spectral_edge_frequency(const Psd& psd, Real fraction);

/// Frequency of the largest PSD bin above 0.5 Hz.
Real peak_frequency(const Psd& psd);

/// Shannon entropy of the normalized PSD (in nats); a flatness measure.
Real spectral_entropy(const Psd& psd);

}  // namespace esl::dsp

#include "dsp/filter.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <numbers>

#include "common/error.hpp"

namespace esl::dsp {

namespace {

constexpr Real k_pi = std::numbers::pi_v<Real>;

void check_frequency(Real frequency_hz, Real sample_rate_hz) {
  // Literal messages (const char* expects overload): the check also
  // guards per-record pipeline setup, and a std::string build here
  // allocates even on the passing path.
  expects(sample_rate_hz > 0.0,
          "filter design: sample rate must be positive");
  expects(frequency_hz > 0.0 && frequency_hz < sample_rate_hz / 2.0,
          "filter design: frequency must lie in (0, Nyquist)");
}

/// RBJ cookbook low-pass biquad at f0 with quality Q.
Biquad rbj_lowpass(Real f0, Real q, Real fs) {
  const Real w0 = 2.0 * k_pi * f0 / fs;
  const Real alpha = std::sin(w0) / (2.0 * q);
  const Real c = std::cos(w0);
  Biquad s;
  s.b0 = (1.0 - c) / 2.0;
  s.b1 = 1.0 - c;
  s.b2 = (1.0 - c) / 2.0;
  s.a0 = 1.0 + alpha;
  s.a1 = -2.0 * c;
  s.a2 = 1.0 - alpha;
  return s;
}

/// RBJ cookbook high-pass biquad at f0 with quality Q.
Biquad rbj_highpass(Real f0, Real q, Real fs) {
  const Real w0 = 2.0 * k_pi * f0 / fs;
  const Real alpha = std::sin(w0) / (2.0 * q);
  const Real c = std::cos(w0);
  Biquad s;
  s.b0 = (1.0 + c) / 2.0;
  s.b1 = -(1.0 + c);
  s.b2 = (1.0 + c) / 2.0;
  s.a0 = 1.0 + alpha;
  s.a1 = -2.0 * c;
  s.a2 = 1.0 - alpha;
  return s;
}

/// First-order bilinear-transform section (lowpass or highpass).
Biquad first_order(Real f0, Real fs, bool highpass) {
  const Real k = std::tan(k_pi * f0 / fs);
  Biquad s;
  s.a0 = 1.0;
  s.a1 = (k - 1.0) / (k + 1.0);
  s.a2 = 0.0;
  if (highpass) {
    s.b0 = 1.0 / (k + 1.0);
    s.b1 = -1.0 / (k + 1.0);
  } else {
    s.b0 = k / (k + 1.0);
    s.b1 = k / (k + 1.0);
  }
  s.b2 = 0.0;
  return s;
}

/// Butterworth section quality factors: Q_k = 1 / (2 sin((2k+1) pi / (2N))),
/// from the pole-pair angles of the analog prototype (e.g. N=3 -> Q = 1,
/// N=5 -> Q = {1.618, 0.618}).
std::vector<Real> butterworth_q(std::size_t order) {
  std::vector<Real> qs;
  for (std::size_t k = 0; k < order / 2; ++k) {
    const Real angle =
        k_pi * (2.0 * static_cast<Real>(k) + 1.0) / (2.0 * static_cast<Real>(order));
    qs.push_back(1.0 / (2.0 * std::sin(angle)));
  }
  return qs;
}

BiquadCascade butterworth(std::size_t order, Real cutoff_hz,
                          Real sample_rate_hz, bool highpass) {
  expects(order >= 1, "butterworth: order must be >= 1");
  check_frequency(cutoff_hz, sample_rate_hz);
  std::vector<Biquad> sections;
  for (const Real q : butterworth_q(order)) {
    sections.push_back(highpass ? rbj_highpass(cutoff_hz, q, sample_rate_hz)
                                : rbj_lowpass(cutoff_hz, q, sample_rate_hz));
  }
  if (order % 2 == 1) {
    sections.push_back(first_order(cutoff_hz, sample_rate_hz, highpass));
  }
  return BiquadCascade(std::move(sections));
}

}  // namespace

Real Biquad::magnitude_at(Real frequency_hz, Real sample_rate_hz) const {
  const Real w = 2.0 * k_pi * frequency_hz / sample_rate_hz;
  const std::complex<Real> z1 = std::polar<Real>(1.0, -w);
  const std::complex<Real> z2 = z1 * z1;
  const std::complex<Real> num = b0 + b1 * z1 + b2 * z2;
  const std::complex<Real> den = a0 + a1 * z1 + a2 * z2;
  return std::abs(num / den);
}

BiquadCascade::BiquadCascade(std::vector<Biquad> sections)
    : sections_(std::move(sections)), state_(sections_.size(), {0.0, 0.0}) {
  expects(!sections_.empty(), "BiquadCascade: need at least one section");
  for (const auto& s : sections_) {
    expects(s.a0 != 0.0, "BiquadCascade: a0 must be non-zero");
  }
}

Real BiquadCascade::process(Real input) {
  Real x = input;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Biquad& s = sections_[i];
    auto& [z1, z2] = state_[i];
    // Direct form II transposed with a0 normalization.
    const Real y = (s.b0 * x + z1) / s.a0;
    z1 = s.b1 * x - s.a1 * y + z2;
    z2 = s.b2 * x - s.a2 * y;
    x = y;
  }
  return x;
}

RealVector BiquadCascade::filter(std::span<const Real> signal) {
  RealVector out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    out[i] = process(signal[i]);
  }
  return out;
}

void BiquadCascade::reset() {
  for (auto& s : state_) {
    s = {0.0, 0.0};
  }
}

Real BiquadCascade::magnitude_at(Real frequency_hz, Real sample_rate_hz) const {
  Real magnitude = 1.0;
  for (const auto& s : sections_) {
    magnitude *= s.magnitude_at(frequency_hz, sample_rate_hz);
  }
  return magnitude;
}

BiquadCascade butterworth_lowpass(std::size_t order, Real cutoff_hz,
                                  Real sample_rate_hz) {
  return butterworth(order, cutoff_hz, sample_rate_hz, /*highpass=*/false);
}

BiquadCascade butterworth_highpass(std::size_t order, Real cutoff_hz,
                                   Real sample_rate_hz) {
  return butterworth(order, cutoff_hz, sample_rate_hz, /*highpass=*/true);
}

BiquadCascade butterworth_bandpass(std::size_t order, Real low_hz, Real high_hz,
                                   Real sample_rate_hz) {
  expects(low_hz < high_hz, "butterworth_bandpass: low_hz must be < high_hz");
  BiquadCascade hp = butterworth_highpass(order, low_hz, sample_rate_hz);
  BiquadCascade lp = butterworth_lowpass(order, high_hz, sample_rate_hz);
  std::vector<Biquad> sections = hp.sections();
  sections.insert(sections.end(), lp.sections().begin(), lp.sections().end());
  return BiquadCascade(std::move(sections));
}

Biquad notch(Real center_hz, Real quality, Real sample_rate_hz) {
  check_frequency(center_hz, sample_rate_hz);
  expects(quality > 0.0, "notch: quality must be positive");
  const Real w0 = 2.0 * k_pi * center_hz / sample_rate_hz;
  const Real alpha = std::sin(w0) / (2.0 * quality);
  const Real c = std::cos(w0);
  Biquad s;
  s.b0 = 1.0;
  s.b1 = -2.0 * c;
  s.b2 = 1.0;
  s.a0 = 1.0 + alpha;
  s.a1 = -2.0 * c;
  s.a2 = 1.0 - alpha;
  return s;
}

RealVector filtfilt(BiquadCascade cascade, std::span<const Real> signal) {
  cascade.reset();
  RealVector forward = cascade.filter(signal);
  std::reverse(forward.begin(), forward.end());
  cascade.reset();
  RealVector backward = cascade.filter(forward);
  std::reverse(backward.begin(), backward.end());
  return backward;
}

namespace {

RealVector windowed_sinc(std::size_t taps, Real cutoff_hz, Real sample_rate_hz,
                         WindowKind window) {
  expects(taps >= 3, "fir design: need at least 3 taps");
  check_frequency(cutoff_hz, sample_rate_hz);
  const Real fc = cutoff_hz / sample_rate_hz;  // normalized (cycles/sample)
  const auto center = static_cast<std::ptrdiff_t>((taps - 1) / 2);
  const RealVector w = make_window(window, taps, /*periodic=*/false);
  RealVector h(taps);
  Real sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const auto m = static_cast<std::ptrdiff_t>(i) - center;
    Real v;
    if (m == 0) {
      v = 2.0 * fc;
    } else {
      const Real x = 2.0 * k_pi * fc * static_cast<Real>(m);
      v = std::sin(x) / (k_pi * static_cast<Real>(m));
    }
    h[i] = v * w[i];
    sum += h[i];
  }
  // Normalize for unity DC gain.
  expects(sum != 0.0, "fir design: degenerate taps");
  for (auto& v : h) {
    v /= sum;
  }
  return h;
}

}  // namespace

RealVector fir_lowpass(std::size_t taps, Real cutoff_hz, Real sample_rate_hz,
                       WindowKind window) {
  return windowed_sinc(taps, cutoff_hz, sample_rate_hz, window);
}

RealVector fir_highpass(std::size_t taps, Real cutoff_hz, Real sample_rate_hz,
                        WindowKind window) {
  expects(taps % 2 == 1, "fir_highpass: taps must be odd");
  RealVector h = windowed_sinc(taps, cutoff_hz, sample_rate_hz, window);
  for (auto& v : h) {
    v = -v;
  }
  h[(taps - 1) / 2] += 1.0;
  return h;
}

RealVector fir_bandpass(std::size_t taps, Real low_hz, Real high_hz,
                        Real sample_rate_hz, WindowKind window) {
  expects(taps % 2 == 1, "fir_bandpass: taps must be odd");
  expects(low_hz < high_hz, "fir_bandpass: low_hz must be < high_hz");
  const RealVector low = windowed_sinc(taps, low_hz, sample_rate_hz, window);
  RealVector high = windowed_sinc(taps, high_hz, sample_rate_hz, window);
  for (std::size_t i = 0; i < taps; ++i) {
    high[i] -= low[i];
  }
  return high;
}

RealVector fir_filter(std::span<const Real> taps, std::span<const Real> signal) {
  expects(!taps.empty(), "fir_filter: empty taps");
  const auto center = static_cast<std::ptrdiff_t>((taps.size() - 1) / 2);
  RealVector out(signal.size(), 0.0);
  const auto n = static_cast<std::ptrdiff_t>(signal.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    Real acc = 0.0;
    for (std::size_t k = 0; k < taps.size(); ++k) {
      const std::ptrdiff_t j = i + center - static_cast<std::ptrdiff_t>(k);
      if (j >= 0 && j < n) {
        acc += taps[k] * signal[static_cast<std::size_t>(j)];
      }
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

RealVector decimate(std::span<const Real> signal, std::size_t factor,
                    Real sample_rate_hz) {
  expects(factor >= 1, "decimate: factor must be >= 1");
  if (factor == 1) {
    return RealVector(signal.begin(), signal.end());
  }
  const Real cutoff = 0.4 * sample_rate_hz / static_cast<Real>(factor);
  const std::size_t taps = 8 * factor + 1;
  const RealVector h = fir_lowpass(taps, cutoff, sample_rate_hz);
  const RealVector filtered = fir_filter(h, signal);
  RealVector out;
  out.reserve(signal.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.size(); i += factor) {
    out.push_back(filtered[i]);
  }
  return out;
}

}  // namespace esl::dsp

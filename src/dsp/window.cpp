#include "dsp/window.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace esl::dsp {

RealVector make_window(WindowKind kind, std::size_t n, bool periodic) {
  expects(n >= 1, "make_window: n must be >= 1");
  RealVector w(n, 1.0);
  if (kind == WindowKind::kRectangular || n == 1) {
    return w;
  }
  const Real denom = static_cast<Real>(periodic ? n : n - 1);
  constexpr Real two_pi = 2.0 * std::numbers::pi_v<Real>;
  for (std::size_t i = 0; i < n; ++i) {
    const Real phase = two_pi * static_cast<Real>(i) / denom;
    switch (kind) {
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(phase);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(phase);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(phase) + 0.08 * std::cos(2.0 * phase);
        break;
      case WindowKind::kRectangular:
        break;
    }
  }
  return w;
}

Real window_power(std::span<const Real> window) {
  Real sum = 0.0;
  for (const Real v : window) {
    sum += v * v;
  }
  return sum;
}

WindowKind parse_window(const std::string& name) {
  if (name == "rectangular" || name == "boxcar") {
    return WindowKind::kRectangular;
  }
  if (name == "hann") {
    return WindowKind::kHann;
  }
  if (name == "hamming") {
    return WindowKind::kHamming;
  }
  if (name == "blackman") {
    return WindowKind::kBlackman;
  }
  throw InvalidArgument("parse_window: unknown window '" + name + "'");
}

}  // namespace esl::dsp

// Fast Fourier Transform.
//
// Radix-2 iterative Cooley-Tukey for power-of-two sizes plus a Bluestein
// (chirp-z) fallback for arbitrary sizes, so the spectral estimators can
// work on any window length. All transforms are unscaled forward
// (X[k] = sum x[n] e^{-2pi i kn/N}) with the inverse applying the 1/N factor.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace esl::dsp {

class Workspace;

using Complex = std::complex<Real>;
using ComplexVector = std::vector<Complex>;

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n >= 1).
std::size_t next_power_of_two(std::size_t n);

/// In-place radix-2 FFT. Requires power-of-two size. Allocation-free
/// scalar primitive; the workspace overloads below are bit-identical
/// and run the vectorized kernel stages over cached twiddle tables.
/// `inverse` selects the conjugate transform and applies the 1/N scale.
void fft_radix2_inplace(std::span<Complex> data, bool inverse);

/// Forward FFT of arbitrary size (radix-2 when possible, Bluestein otherwise).
ComplexVector fft(std::span<const Complex> input);

/// Inverse FFT of arbitrary size; applies the 1/N normalization.
ComplexVector ifft(std::span<const Complex> input);

/// Forward FFT of a real signal; returns the n/2+1 non-redundant bins.
/// Even lengths use the half-complex specialization: one n/2-point
/// complex FFT of z[m] = x[2m] + i*x[2m+1] plus a Hermitian unpack, so a
/// real window never pays for the redundant conjugate half.
ComplexVector rfft(std::span<const Real> input);

/// Naive O(n^2) DFT used as a test oracle.
ComplexVector dft_reference(std::span<const Complex> input);

// Workspace-threaded overloads: bit-identical to the functions above but
// all temporaries (Bluestein chirp/convolution buffers, real-to-complex
// staging) come from `workspace` and `out` is caller-owned, so a warm
// call performs no heap allocation. `out` may be workspace.spectrum; it
// must not alias `input` or workspace scratch. See dsp/workspace.hpp.

/// fft() into a caller-owned buffer.
void fft_into(std::span<const Complex> input, Workspace& workspace,
              ComplexVector& out);

/// ifft() into a caller-owned buffer.
void ifft_into(std::span<const Complex> input, Workspace& workspace,
               ComplexVector& out);

/// rfft() into a caller-owned buffer (n/2+1 non-redundant bins), with
/// the same even-length half-complex specialization.
void rfft_into(std::span<const Real> input, Workspace& workspace,
               ComplexVector& out);

}  // namespace esl::dsp

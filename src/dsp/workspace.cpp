#include "dsp/workspace.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace esl::dsp {

const RealVector& Workspace::window_cache(WindowKind kind, std::size_t n) {
  if (window_length != n || window_kind != kind || window_coeffs.size() != n) {
    window_coeffs = make_window(kind, n, /*periodic=*/true);
    window_power_sum = window_power(window_coeffs);
    window_length = n;
    window_kind = kind;
  }
  return window_coeffs;
}

const ComplexVector& Workspace::twiddle_cache(std::size_t n, bool inverse) {
  expects(is_power_of_two(n), "Workspace::twiddle_cache: n must be 2^k");
  ComplexVector& table = inverse ? twiddle_inverse : twiddle_forward;
  std::size_t& cached_length =
      inverse ? twiddle_inverse_length : twiddle_forward_length;
  if (cached_length != n || table.size() != n - 1) {
    constexpr Real k_two_pi = 2.0 * std::numbers::pi_v<Real>;
    const Real direction = inverse ? k_two_pi : -k_two_pi;
    table.resize(n - 1);
    // Per stage of span len, entries [len/2 - 1, len - 1) hold wlen^j by
    // the same w *= wlen recurrence the scalar butterfly loop ran.
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const Real angle = direction / static_cast<Real>(len);
      const Complex wlen(std::cos(angle), std::sin(angle));
      Complex w(1.0, 0.0);
      const std::size_t offset = len / 2 - 1;
      for (std::size_t j = 0; j < len / 2; ++j) {
        table[offset + j] = w;
        w *= wlen;
      }
    }
    cached_length = n;
  }
  return table;
}

const ComplexVector& Workspace::rfft_twiddle_cache(std::size_t n) {
  expects(n >= 2 && n % 2 == 0, "Workspace::rfft_twiddle_cache: n must be even");
  if (rfft_twiddle_length != n || rfft_twiddle.size() != n / 2 + 1) {
    constexpr Real k_two_pi = 2.0 * std::numbers::pi_v<Real>;
    rfft_twiddle.resize(n / 2 + 1);
    for (std::size_t k = 0; k <= n / 2; ++k) {
      const Real angle =
          -k_two_pi * static_cast<Real>(k) / static_cast<Real>(n);
      rfft_twiddle[k] = Complex(std::cos(angle), std::sin(angle));
    }
    rfft_twiddle_length = n;
  }
  return rfft_twiddle;
}

}  // namespace esl::dsp

#include "dsp/workspace.hpp"

namespace esl::dsp {

const RealVector& Workspace::window_cache(WindowKind kind, std::size_t n) {
  if (window_length != n || window_kind != kind || window_coeffs.size() != n) {
    window_coeffs = make_window(kind, n, /*periodic=*/true);
    window_power_sum = window_power(window_coeffs);
    window_length = n;
    window_kind = kind;
  }
  return window_coeffs;
}

}  // namespace esl::dsp

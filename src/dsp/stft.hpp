// Short-time Fourier transform and spectrogram.
//
// Not used by Algorithm 1 itself, but the standard inspection tool for
// EEG: the cohort explorer and tests use it to verify that the synthetic
// ictal discharges actually chirp the way real electrographic seizures
// do.
#pragma once

#include <span>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "dsp/window.hpp"

namespace esl::dsp {

/// STFT result: one row per frame, one column per frequency bin.
struct Stft {
  Matrix magnitude;       // |X[frame, bin]|
  RealVector frequency;   // Hz, per column
  RealVector frame_time;  // seconds of each frame start, per row

  std::size_t frames() const { return magnitude.rows(); }
  std::size_t bins() const { return magnitude.cols(); }
};

/// Magnitude STFT with the given analysis window length and hop (samples).
Stft stft(std::span<const Real> signal, Real sample_rate_hz,
          std::size_t window_length, std::size_t hop,
          WindowKind window = WindowKind::kHann);

/// Converts an STFT to dB relative to the peak magnitude, clamped at
/// `floor_db` (a displayable spectrogram).
Matrix spectrogram_db(const Stft& transform, Real floor_db = -80.0);

/// Frequency of the strongest bin above `min_hz` in the given frame.
Real frame_peak_frequency(const Stft& transform, std::size_t frame,
                          Real min_hz = 0.5);

}  // namespace esl::dsp

// Reusable DSP scratch arena for the allocation-free streaming hot path.
//
// Every `*_into(..., Workspace&)` overload in the DSP layer (fft.hpp,
// spectrum.hpp, wavelet.hpp) draws its temporaries from a Workspace
// instead of the heap. Buffers grow on first use and are retained, so a
// workspace that has seen one window of a given geometry (length, taper,
// wavelet levels) performs zero heap allocations for every following
// window of the same geometry. The workspace overloads are bit-identical
// to the allocating signatures — same arithmetic, same operation order —
// which the WorkspaceParity test suites assert element by element.
//
// Ownership rules (see README "Serving at scale"):
//  * one Workspace per stream: StreamingExtractor (and therefore every
//    engine::PatientSession) owns one, so shard workers never share one;
//  * a Workspace is NOT thread-safe — never call workspace overloads on
//    the same instance from two threads concurrently;
//  * result slots (psd, decomposition, energy, spectrum) stay valid until
//    the next workspace call that writes the same slot — copy them out
//    if you need two results of the same kind alive at once;
//  * scratch members may alias nothing passed into a workspace overload
//    except the documented result slots.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "dsp/fft.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/wavelet.hpp"
#include "dsp/window.hpp"

namespace esl::dsp {

class Workspace {
 public:
  Workspace() = default;

  // Workspaces are per-stream scratch; copying one would duplicate warm
  // buffers for no benefit and invites accidental sharing, so only moves
  // are allowed (vector-of-sessions storage still works).
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  // ------------------------------------------------------------- results
  // Standard result slots the feature layer reads after a workspace call.
  // Each is also accepted as the explicit `out` argument of the matching
  // `*_into` overload (out may be a result slot, never internal scratch).

  /// rfft/fft/ifft workspace overloads write here; periodogram clobbers it.
  ComplexVector spectrum;
  /// periodogram_into / welch_into result storage.
  Psd psd;
  /// wavedec_into result storage (per-level detail buffers reused).
  WaveletDecomposition decomposition;
  /// wavelet_energy_distribution_into result storage.
  RealVector energy;

  // ----------------------------------------------- feature-layer scratch
  // General-purpose buffers for scratch-aware overloads outside dsp::
  // (stats::quantile_from_sorted sorting, stats::hjorth_parameters
  // derivative series, entropy histogram/ordinal-pattern counting).
  // Contents are unspecified between calls.

  /// Order-statistics scratch: copy + sort a window here (IQR feature).
  RealVector sorted;
  /// First/second discrete-derivative series for Hjorth parameters.
  RealVector derivative_a;
  RealVector derivative_b;
  /// Histogram / ordinal-pattern count scratch (entropy overloads).
  std::vector<std::size_t> counts;
  /// Histogram probability-mass scratch (entropy overloads).
  RealVector probabilities;

  // -------------------------------------------------- dsp-layer internals
  // Scratch owned by the dsp `*_into` implementations. Treat as opaque:
  // contents and sizes are unspecified between calls.

  /// Real-to-complex staging buffer for rfft_into.
  ComplexVector time_scratch;
  /// Half-length spectrum staging for the even-length rfft split (the
  /// Bluestein half path cannot transform time_scratch in place).
  ComplexVector half_spectrum;
  /// Radix-2 per-stage twiddle tables, cached per direction by
  /// transform length: the stage of span `len` owns entries
  /// [len/2 - 1, len - 1). Directions cache independently so a
  /// forward-only caller never builds the inverse table, while
  /// Bluestein (which mixes both at one size) still fills each exactly
  /// once. Values come from the exact w *= wlen recurrence the scalar
  /// butterflies used, so the cached tables are bit-identical to the
  /// historical running twiddle.
  ComplexVector twiddle_forward;
  ComplexVector twiddle_inverse;
  std::size_t twiddle_forward_length = 0;
  std::size_t twiddle_inverse_length = 0;
  /// Even-length rfft unpack twiddles exp(-2*pi*i*k/n), k = 0..n/2,
  /// cached by n.
  ComplexVector rfft_twiddle;
  std::size_t rfft_twiddle_length = 0;
  /// Bluestein chirp, cached by (length, direction) — the chirp for a
  /// given size is deterministic, so reuse is bit-identical.
  ComplexVector chirp;
  std::size_t chirp_length = 0;
  bool chirp_inverse = false;
  /// Bluestein convolution operands (padded to the fft size m).
  ComplexVector conv_a;
  ComplexVector conv_b;
  /// Taper coefficients cached by (kind, length) plus their power sum.
  RealVector window_coeffs;
  std::size_t window_length = 0;
  WindowKind window_kind = WindowKind::kRectangular;
  Real window_power_sum = 0.0;
  /// Tapered copy of the periodogram input.
  RealVector tapered;
  /// Welch per-segment PSD accumulator input.
  Psd segment_psd;
  /// Odd-length periodization pad for the periodic DWT.
  RealVector padded;
  /// wavedec approximation ping-pong buffers.
  RealVector approx_ping;
  RealVector approx_pong;

  /// Returns the cached taper for (kind, n), rebuilding it (and the cached
  /// power sum) only when the key changes. Values match make_window()
  /// exactly.
  const RealVector& window_cache(WindowKind kind, std::size_t n);

  /// Returns the cached per-stage radix-2 twiddle table for length-n
  /// transforms in the requested direction, rebuilding both directions
  /// only when n changes (n must be a power of two).
  const ComplexVector& twiddle_cache(std::size_t n, bool inverse);

  /// Returns the cached rfft unpack twiddles for even length n
  /// (n/2 + 1 entries), rebuilding only when n changes.
  const ComplexVector& rfft_twiddle_cache(std::size_t n);
};

}  // namespace esl::dsp

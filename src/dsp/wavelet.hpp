// Discrete wavelet transform (DWT).
//
// The paper decomposes each 4-second EEG window to level 7 with the
// Daubechies-4 (db4) basis and computes entropies of selected detail
// levels (§III-A). We provide orthogonal Daubechies banks db1..db4, single
// and multi-level transforms, perfect-reconstruction inverses, and two
// boundary handling modes (periodic and symmetric reflection).
//
// Conventions (verified by the perfect-reconstruction tests):
//  * h = scaling (lowpass) coefficients in natural order, sum(h) = sqrt(2);
//  * analysis uses correlation with h / g where g[k] = (-1)^k h[N-1-k];
//  * synthesis scatters with the same h / g (orthogonal bank).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace esl::dsp {

class Workspace;

/// Orthogonal wavelet filter bank.
class Wavelet {
 public:
  /// Daubechies wavelet with the given number of vanishing moments (1-4).
  /// db1 is the Haar wavelet; the paper uses db4 (8 taps).
  static Wavelet daubechies(int vanishing_moments);

  /// Convenience alias for daubechies(1).
  static Wavelet haar() { return daubechies(1); }

  const std::string& name() const { return name_; }
  /// Scaling (lowpass) coefficients, natural order.
  const RealVector& lowpass() const { return lowpass_; }
  /// Wavelet (highpass) coefficients: g[k] = (-1)^k h[N-1-k].
  const RealVector& highpass() const { return highpass_; }
  /// Filter length N.
  std::size_t length() const { return lowpass_.size(); }

 private:
  Wavelet(std::string name, RealVector lowpass);

  std::string name_;
  RealVector lowpass_;
  RealVector highpass_;
};

/// Boundary handling for the transforms.
enum class ExtensionMode {
  kPeriodic,   // circular wrap; coefficient length ceil(n/2)
  kSymmetric,  // half-point reflection (pywt 'symmetric');
               // coefficient length floor((n + N - 1) / 2)
};

/// Approximation/detail pair produced by one analysis level.
struct DwtLevel {
  RealVector approx;
  RealVector detail;
};

/// Single-level analysis. Requires at least 2 samples.
DwtLevel dwt_single(std::span<const Real> signal, const Wavelet& wavelet,
                    ExtensionMode mode = ExtensionMode::kPeriodic);

/// Single-level synthesis; `output_length` is the original signal length
/// (needed because both n and n+1 map to the same coefficient lengths).
RealVector idwt_single(std::span<const Real> approx,
                       std::span<const Real> detail, const Wavelet& wavelet,
                       ExtensionMode mode, std::size_t output_length);

/// Multi-level decomposition result.
///
/// details[0] is level 1 (finest scale, highest frequencies);
/// details[levels-1] is the coarsest detail; approx is the final
/// approximation. signal_lengths[l] records the input length at level l+1
/// so the inverse can truncate correctly.
struct WaveletDecomposition {
  std::vector<RealVector> details;
  RealVector approx;
  std::vector<std::size_t> signal_lengths;

  std::size_t levels() const { return details.size(); }

  /// Detail coefficients of the given 1-based level (paper notation:
  /// "seventh level" = detail_at_level(7)).
  const RealVector& detail_at_level(std::size_t level) const;
};

/// Largest meaningful decomposition depth, floor(log2(n / (N - 1))).
std::size_t max_decomposition_levels(std::size_t signal_length,
                                     const Wavelet& wavelet);

/// Multi-level analysis (wavedec). `levels` >= 1.
WaveletDecomposition wavedec(std::span<const Real> signal,
                             const Wavelet& wavelet, std::size_t levels,
                             ExtensionMode mode = ExtensionMode::kPeriodic);

/// Multi-level synthesis (waverec); returns a signal of the original length.
RealVector waverec(const WaveletDecomposition& decomposition,
                   const Wavelet& wavelet,
                   ExtensionMode mode = ExtensionMode::kPeriodic);

/// Fraction of total coefficient energy in each detail level plus the final
/// approximation (levels()+1 entries summing to 1 for non-zero signals);
/// used by the e-Glass-style feature set.
RealVector wavelet_energy_distribution(const WaveletDecomposition& d);

// Workspace-threaded overloads: bit-identical to the transforms above but
// the periodization pad and approximation ping-pong buffers come from
// `workspace` and the coefficients land in the caller-owned `out` (which
// may be workspace.decomposition), whose per-level buffers are reused, so
// a warm call performs no heap allocation. See dsp/workspace.hpp.

/// dwt_single() into a caller-owned level.
void dwt_single_into(std::span<const Real> signal, const Wavelet& wavelet,
                     Workspace& workspace, DwtLevel& out,
                     ExtensionMode mode = ExtensionMode::kPeriodic);

/// wavedec() into a caller-owned decomposition.
void wavedec_into(std::span<const Real> signal, const Wavelet& wavelet,
                  std::size_t levels, Workspace& workspace,
                  WaveletDecomposition& out,
                  ExtensionMode mode = ExtensionMode::kPeriodic);

/// wavelet_energy_distribution() into a caller-owned vector (cleared,
/// capacity retained); needs no workspace.
void wavelet_energy_distribution_into(const WaveletDecomposition& d,
                                      RealVector& out);

}  // namespace esl::dsp

// Tapering windows for spectral estimation.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"

namespace esl::dsp {

enum class WindowKind {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Returns the n window coefficients (periodic=false gives the symmetric
/// variant used for filter design; periodic=true the DFT-even variant used
/// for spectral analysis).
RealVector make_window(WindowKind kind, std::size_t n, bool periodic = true);

/// Sum of squared window coefficients; PSD normalization term.
Real window_power(std::span<const Real> window);

/// Parses "hann", "hamming", "blackman" or "rectangular".
WindowKind parse_window(const std::string& name);

}  // namespace esl::dsp

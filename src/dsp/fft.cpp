#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "dsp/workspace.hpp"

namespace esl::dsp {

namespace {

constexpr Real k_two_pi = 2.0 * std::numbers::pi_v<Real>;

void bit_reverse_permute(std::span<Complex> data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    while (j & bit) {
      j ^= bit;
      bit >>= 1;
    }
    j |= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
}

/// Radix-2 FFT over workspace-cached per-stage twiddle tables, each
/// stage dispatched through the vectorized kernels:: seam. Twiddles come
/// from the same w *= wlen recurrence the historical scalar loop ran, so
/// results are bit-identical to it at every SIMD level.
void radix2_with_workspace(std::span<Complex> data, bool inverse,
                           Workspace& ws) {
  const std::size_t n = data.size();
  expects(is_power_of_two(n), "fft_radix2_inplace: size must be a power of two");
  if (n == 1) {
    return;
  }
  bit_reverse_permute(data);
  const ComplexVector& twiddles = ws.twiddle_cache(n, inverse);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    // The stage of span len owns twiddle entries [len/2 - 1, len - 1).
    kernels::fft_stage(data.data(), n, len, twiddles.data() + len / 2 - 1);
  }
  if (inverse) {
    for (auto& v : data) {
      v /= static_cast<Real>(n);
    }
  }
}

/// Bluestein chirp-z transform: expresses an arbitrary-size DFT as a
/// convolution, evaluated with a power-of-two FFT. All temporaries live
/// in the workspace; the chirp is cached by (n, direction) since it is a
/// pure function of both.
void bluestein_into(std::span<const Complex> input, bool inverse,
                    Workspace& ws, ComplexVector& out) {
  const std::size_t n = input.size();
  const std::size_t m = next_power_of_two(2 * n + 1);
  const Real sign = inverse ? 1.0 : -1.0;

  // Chirp w[k] = exp(sign * i * pi * k^2 / n).
  if (ws.chirp_length != n || ws.chirp_inverse != inverse ||
      ws.chirp.size() != n) {
    ws.chirp.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      // k^2 mod 2n keeps the argument small and the chirp exactly periodic.
      const std::size_t k2 = (k * k) % (2 * n);
      const Real angle = sign * std::numbers::pi_v<Real> *
                         static_cast<Real>(k2) / static_cast<Real>(n);
      ws.chirp[k] = Complex(std::cos(angle), std::sin(angle));
    }
    ws.chirp_length = n;
    ws.chirp_inverse = inverse;
  }
  const ComplexVector& chirp = ws.chirp;

  ComplexVector& a = ws.conv_a;
  ComplexVector& b = ws.conv_b;
  a.assign(m, Complex(0.0, 0.0));
  b.assign(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = input[k] * chirp[k];
    b[k] = std::conj(chirp[k]);
  }
  for (std::size_t k = 1; k < n; ++k) {
    b[m - k] = std::conj(chirp[k]);
  }

  radix2_with_workspace(a, false, ws);
  radix2_with_workspace(b, false, ws);
  for (std::size_t k = 0; k < m; ++k) {
    a[k] *= b[k];
  }
  radix2_with_workspace(a, true, ws);

  out.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = a[k] * chirp[k];
  }
  if (inverse) {
    for (auto& v : out) {
      v /= static_cast<Real>(n);
    }
  }
}

ComplexVector bluestein(std::span<const Complex> input, bool inverse) {
  Workspace ws;
  ComplexVector out;
  bluestein_into(input, inverse, ws, out);
  return out;
}

/// Even-length real FFT via one half-length complex FFT: z[m] =
/// x[2m] + i*x[2m+1] is transformed (radix-2 when n/2 is a power of two,
/// Bluestein otherwise) and the n/2 + 1 non-redundant bins are recovered
/// by the vectorized unpack kernel — the classic split that stops a real
/// window from paying for the redundant conjugate half.
void rfft_even_into(std::span<const Real> input, Workspace& ws,
                    ComplexVector& out) {
  const std::size_t n = input.size();
  const std::size_t half = n / 2;
  ComplexVector& staged = ws.time_scratch;
  staged.resize(half);
  for (std::size_t m = 0; m < half; ++m) {
    staged[m] = Complex(input[2 * m], input[2 * m + 1]);
  }
  const Complex* half_spectrum = nullptr;
  if (is_power_of_two(half)) {
    radix2_with_workspace(staged, false, ws);
    half_spectrum = staged.data();
  } else {
    bluestein_into(staged, false, ws, ws.half_spectrum);
    half_spectrum = ws.half_spectrum.data();
  }
  const ComplexVector& twiddles = ws.rfft_twiddle_cache(n);
  out.resize(half + 1);
  kernels::rfft_unpack(half_spectrum, half, twiddles.data(), out.data());
}

}  // namespace

bool is_power_of_two(std::size_t n) {
  return n >= 1 && (n & (n - 1)) == 0;
}

std::size_t next_power_of_two(std::size_t n) {
  expects(n >= 1, "next_power_of_two: n must be >= 1");
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

void fft_radix2_inplace(std::span<Complex> data, bool inverse) {
  // Allocation-free public primitive: twiddles come from the historical
  // in-register w *= wlen recurrence. The workspace overloads cache the
  // same values as per-stage tables and run the vectorized kernels, and
  // reproduce this loop bit for bit (WorkspaceParity/SimdParity suites).
  const std::size_t n = data.size();
  expects(is_power_of_two(n), "fft_radix2_inplace: size must be a power of two");
  if (n == 1) {
    return;
  }
  bit_reverse_permute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const Real angle = (inverse ? k_two_pi : -k_two_pi) / static_cast<Real>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = data[i + j];
        const Complex v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& v : data) {
      v /= static_cast<Real>(n);
    }
  }
}

ComplexVector fft(std::span<const Complex> input) {
  expects(!input.empty(), "fft: empty input");
  if (is_power_of_two(input.size())) {
    ComplexVector data(input.begin(), input.end());
    fft_radix2_inplace(data, false);
    return data;
  }
  return bluestein(input, false);
}

ComplexVector ifft(std::span<const Complex> input) {
  expects(!input.empty(), "ifft: empty input");
  if (is_power_of_two(input.size())) {
    ComplexVector data(input.begin(), input.end());
    fft_radix2_inplace(data, true);
    return data;
  }
  return bluestein(input, true);
}

ComplexVector rfft(std::span<const Real> input) {
  expects(!input.empty(), "rfft: empty input");
  Workspace workspace;
  ComplexVector out;
  rfft_into(input, workspace, out);
  return out;
}

void fft_into(std::span<const Complex> input, Workspace& workspace,
              ComplexVector& out) {
  expects(!input.empty(), "fft_into: empty input");
  if (is_power_of_two(input.size())) {
    out.assign(input.begin(), input.end());
    radix2_with_workspace(out, false, workspace);
    return;
  }
  bluestein_into(input, false, workspace, out);
}

void ifft_into(std::span<const Complex> input, Workspace& workspace,
               ComplexVector& out) {
  expects(!input.empty(), "ifft_into: empty input");
  if (is_power_of_two(input.size())) {
    out.assign(input.begin(), input.end());
    radix2_with_workspace(out, true, workspace);
    return;
  }
  bluestein_into(input, true, workspace, out);
}

void rfft_into(std::span<const Real> input, Workspace& workspace,
               ComplexVector& out) {
  expects(!input.empty(), "rfft_into: empty input");
  const std::size_t n = input.size();
  if (n % 2 == 0) {
    rfft_even_into(input, workspace, out);
    return;
  }
  // Odd length: full complex transform, truncated to the n/2 + 1
  // non-redundant bins.
  ComplexVector& staged = workspace.time_scratch;
  staged.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    staged[i] = Complex(input[i], 0.0);
  }
  if (is_power_of_two(n)) {  // n == 1: size-one transform is the identity
    out.assign(staged.begin(), staged.end());
    radix2_with_workspace(out, false, workspace);
  } else {
    bluestein_into(staged, false, workspace, out);
  }
  out.resize(n / 2 + 1);
}

ComplexVector dft_reference(std::span<const Complex> input) {
  const std::size_t n = input.size();
  ComplexVector out(n, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const Real angle = -k_two_pi * static_cast<Real>(k * t) / static_cast<Real>(n);
      out[k] += input[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

}  // namespace esl::dsp

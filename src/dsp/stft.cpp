#include "dsp/stft.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"

namespace esl::dsp {

Stft stft(std::span<const Real> signal, Real sample_rate_hz,
          std::size_t window_length, std::size_t hop, WindowKind window) {
  expects(sample_rate_hz > 0.0, "stft: sample rate must be positive");
  expects(window_length >= 2, "stft: window_length must be >= 2");
  expects(hop >= 1, "stft: hop must be >= 1");
  expects(signal.size() >= window_length, "stft: signal shorter than window");

  const std::size_t frames = (signal.size() - window_length) / hop + 1;
  const std::size_t bins = window_length / 2 + 1;
  const RealVector taper = make_window(window, window_length, /*periodic=*/true);

  Stft out;
  out.magnitude = Matrix(frames, bins);
  out.frequency.resize(bins);
  for (std::size_t k = 0; k < bins; ++k) {
    out.frequency[k] =
        static_cast<Real>(k) * sample_rate_hz / static_cast<Real>(window_length);
  }
  out.frame_time.resize(frames);

  RealVector tapered(window_length);
  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t start = f * hop;
    out.frame_time[f] = static_cast<Real>(start) / sample_rate_hz;
    for (std::size_t i = 0; i < window_length; ++i) {
      tapered[i] = signal[start + i] * taper[i];
    }
    const ComplexVector spectrum = rfft(tapered);
    auto row = out.magnitude.row(f);
    for (std::size_t k = 0; k < bins; ++k) {
      row[k] = std::abs(spectrum[k]);
    }
  }
  return out;
}

Matrix spectrogram_db(const Stft& transform, Real floor_db) {
  expects(floor_db < 0.0, "spectrogram_db: floor must be negative");
  Real peak = 0.0;
  for (const Real v : transform.magnitude.data()) {
    peak = std::max(peak, v);
  }
  Matrix out(transform.frames(), transform.bins(), floor_db);
  if (peak <= 0.0) {
    return out;
  }
  for (std::size_t f = 0; f < transform.frames(); ++f) {
    for (std::size_t k = 0; k < transform.bins(); ++k) {
      const Real v = transform.magnitude(f, k);
      if (v > 0.0) {
        out(f, k) = std::max(floor_db, 20.0 * std::log10(v / peak));
      }
    }
  }
  return out;
}

Real frame_peak_frequency(const Stft& transform, std::size_t frame,
                          Real min_hz) {
  expects(frame < transform.frames(),
          "frame_peak_frequency: frame out of range");
  Real best_f = 0.0;
  Real best_v = -1.0;
  for (std::size_t k = 0; k < transform.bins(); ++k) {
    if (transform.frequency[k] < min_hz) {
      continue;
    }
    if (transform.magnitude(frame, k) > best_v) {
      best_v = transform.magnitude(frame, k);
      best_f = transform.frequency[k];
    }
  }
  return best_f;
}

}  // namespace esl::dsp

#include "dsp/wavelet.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "dsp/workspace.hpp"

namespace esl::dsp {

namespace {

// Daubechies scaling coefficients (natural order, sum = sqrt(2)).
// db1/db2 are exact closed forms; db3/db4 are the standard published
// values. Orthonormality (sum h[k] h[k+2m] = delta_m) is asserted in tests.
RealVector daubechies_lowpass(int vanishing_moments) {
  const Real s2 = std::sqrt(2.0);
  const Real s3 = std::sqrt(3.0);
  switch (vanishing_moments) {
    case 1:
      return {1.0 / s2, 1.0 / s2};
    case 2:
      return {(1.0 + s3) / (4.0 * s2), (3.0 + s3) / (4.0 * s2),
              (3.0 - s3) / (4.0 * s2), (1.0 - s3) / (4.0 * s2)};
    case 3: {
      // Closed form: with a = sqrt(10), b = sqrt(5 + 2 sqrt(10)),
      // h = {1+a+b, 5+a+3b, 10-2a+2b, 10-2a-2b, 5+a-3b, 1+a-b} / (16 sqrt(2)).
      const Real a = std::sqrt(10.0);
      const Real b = std::sqrt(5.0 + 2.0 * a);
      const Real denom = 16.0 * s2;
      return {(1.0 + a + b) / denom,        (5.0 + a + 3.0 * b) / denom,
              (10.0 - 2.0 * a + 2.0 * b) / denom,
              (10.0 - 2.0 * a - 2.0 * b) / denom,
              (5.0 + a - 3.0 * b) / denom,  (1.0 + a - b) / denom};
    }
    case 4:
      return {0.23037781330885523, 0.71484657055254153, 0.63088076792959036,
              -0.02798376941698385, -0.18703481171888114, 0.03084138183598697,
              0.03288301166698295, -0.01059740178499728};
    default:
      throw InvalidArgument(
          "Wavelet::daubechies: supported vanishing moments are 1..4, got " +
          std::to_string(vanishing_moments));
  }
}

/// Single-level analysis core shared by the allocating and workspace
/// paths: writes the coefficient pair into `approx`/`detail` (resized,
/// capacity retained) with `padded_scratch` holding the odd-length
/// periodization copy when needed.
void dwt_single_buffers(std::span<const Real> signal, const Wavelet& wavelet,
                        ExtensionMode mode, RealVector& padded_scratch,
                        RealVector& approx, RealVector& detail);

std::size_t reflect_index(std::ptrdiff_t index, std::size_t n) {
  // Half-point symmetric extension: ... x1 x0 | x0 x1 ... xn-1 | xn-1 xn-2 ...
  auto sn = static_cast<std::ptrdiff_t>(n);
  // Period of the reflected signal is 2n.
  std::ptrdiff_t m = index % (2 * sn);
  if (m < 0) {
    m += 2 * sn;
  }
  if (m >= sn) {
    m = 2 * sn - 1 - m;
  }
  return static_cast<std::size_t>(m);
}

void dwt_single_buffers(std::span<const Real> signal, const Wavelet& wavelet,
                        ExtensionMode mode, RealVector& padded_scratch,
                        RealVector& approx, RealVector& detail) {
  expects(signal.size() >= 2, "dwt_single: need at least 2 samples");
  const std::size_t filter_length = wavelet.length();
  const RealVector& h = wavelet.lowpass();
  const RealVector& g = wavelet.highpass();

  if (mode == ExtensionMode::kPeriodic) {
    // Odd lengths are periodized by repeating the last sample (pywt 'per').
    std::span<const Real> x = signal;
    if (signal.size() % 2 != 0) {
      padded_scratch.assign(signal.begin(), signal.end());
      padded_scratch.push_back(signal.back());
      x = padded_scratch;
    }
    const std::size_t n = x.size();
    const std::size_t half = n / 2;
    approx.resize(half);
    detail.resize(half);
    // Filter correlation through the vectorized kernel seam: wrap-free
    // interior outputs advance in packs, the wrap tail stays scalar,
    // and both accumulate taps in the same order as the historical loop.
    kernels::dwt_periodic_analysis(x.data(), n, h.data(), g.data(),
                                   filter_length, approx.data(),
                                   detail.data());
    return;
  }

  // Symmetric mode: correlation against the reflected signal;
  // coefficient index i reads x_sym(2i + k - N + 2).
  const std::size_t n = signal.size();
  const std::size_t count = (n + filter_length - 1) / 2;
  approx.assign(count, 0.0);
  detail.assign(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    Real a = 0.0;
    Real d = 0.0;
    for (std::size_t k = 0; k < filter_length; ++k) {
      const auto idx = static_cast<std::ptrdiff_t>(2 * i + k) -
                       static_cast<std::ptrdiff_t>(filter_length) + 2;
      const Real v = signal[reflect_index(idx, n)];
      a += h[k] * v;
      d += g[k] * v;
    }
    approx[i] = a;
    detail[i] = d;
  }
}

}  // namespace

Wavelet::Wavelet(std::string name, RealVector lowpass)
    : name_(std::move(name)), lowpass_(std::move(lowpass)) {
  const std::size_t n = lowpass_.size();
  highpass_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Real sign = (k % 2 == 0) ? 1.0 : -1.0;
    highpass_[k] = sign * lowpass_[n - 1 - k];
  }
}

Wavelet Wavelet::daubechies(int vanishing_moments) {
  return Wavelet("db" + std::to_string(vanishing_moments),
                 daubechies_lowpass(vanishing_moments));
}

DwtLevel dwt_single(std::span<const Real> signal, const Wavelet& wavelet,
                    ExtensionMode mode) {
  DwtLevel out;
  RealVector padded;
  dwt_single_buffers(signal, wavelet, mode, padded, out.approx, out.detail);
  return out;
}

void dwt_single_into(std::span<const Real> signal, const Wavelet& wavelet,
                     Workspace& workspace, DwtLevel& out, ExtensionMode mode) {
  dwt_single_buffers(signal, wavelet, mode, workspace.padded, out.approx,
                     out.detail);
}

RealVector idwt_single(std::span<const Real> approx,
                       std::span<const Real> detail, const Wavelet& wavelet,
                       ExtensionMode mode, std::size_t output_length) {
  expects(approx.size() == detail.size(),
          "idwt_single: approx/detail length mismatch");
  expects(!approx.empty(), "idwt_single: empty coefficients");
  const std::size_t filter_length = wavelet.length();
  const RealVector& h = wavelet.lowpass();
  const RealVector& g = wavelet.highpass();
  const std::size_t count = approx.size();

  if (mode == ExtensionMode::kPeriodic) {
    const std::size_t n = 2 * count;
    expects(output_length == n || output_length + 1 == n,
            "idwt_single: output_length incompatible with coefficient count");
    RealVector full(n, 0.0);
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t k = 0; k < filter_length; ++k) {
        full[(2 * i + k) % n] += approx[i] * h[k] + detail[i] * g[k];
      }
    }
    full.resize(output_length);
    return full;
  }

  // Symmetric mode: upsample-and-scatter, then trim N-2 leading samples
  // (mirror of the analysis offset) and truncate to output_length.
  expects(2 * count >= filter_length,
          "idwt_single: coefficients too short for this wavelet");
  const std::size_t reconstructed = 2 * count - filter_length + 2;
  expects(output_length <= reconstructed,
          "idwt_single: output_length incompatible with coefficient count");
  RealVector full(2 * count + filter_length - 1, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t k = 0; k < filter_length; ++k) {
      full[2 * i + k] += approx[i] * h[k] + detail[i] * g[k];
    }
  }
  RealVector out(output_length);
  for (std::size_t m = 0; m < output_length; ++m) {
    out[m] = full[m + filter_length - 2];
  }
  return out;
}

const RealVector& WaveletDecomposition::detail_at_level(
    std::size_t level) const {
  expects(level >= 1 && level <= details.size(),
          "WaveletDecomposition::detail_at_level: level out of range");
  return details[level - 1];
}

std::size_t max_decomposition_levels(std::size_t signal_length,
                                     const Wavelet& wavelet) {
  const std::size_t denom = wavelet.length() - 1;
  if (denom == 0 || signal_length < 2 * denom) {
    return signal_length >= 2 ? 1 : 0;
  }
  std::size_t levels = 0;
  std::size_t n = signal_length / denom;
  while (n > 1) {
    n >>= 1;
    ++levels;
  }
  return levels;
}

WaveletDecomposition wavedec(std::span<const Real> signal,
                             const Wavelet& wavelet, std::size_t levels,
                             ExtensionMode mode) {
  Workspace workspace;
  WaveletDecomposition out;
  wavedec_into(signal, wavelet, levels, workspace, out, mode);
  return out;
}

void wavedec_into(std::span<const Real> signal, const Wavelet& wavelet,
                  std::size_t levels, Workspace& workspace,
                  WaveletDecomposition& out, ExtensionMode mode) {
  expects(levels >= 1, "wavedec: levels must be >= 1");
  expects(signal.size() >= 2, "wavedec: need at least 2 samples");

  out.details.resize(levels);
  out.signal_lengths.clear();
  // Cascade through the ping-pong approximation buffers; details land
  // directly in the decomposition's reused per-level storage.
  RealVector* current = &workspace.approx_ping;
  RealVector* next = &workspace.approx_pong;
  current->assign(signal.begin(), signal.end());
  for (std::size_t level = 0; level < levels; ++level) {
    expects(current->size() >= 2,
            "wavedec: signal too short for requested level count");
    out.signal_lengths.push_back(current->size());
    dwt_single_buffers(*current, wavelet, mode, workspace.padded, *next,
                       out.details[level]);
    std::swap(current, next);
  }
  out.approx.assign(current->begin(), current->end());
}

RealVector waverec(const WaveletDecomposition& decomposition,
                   const Wavelet& wavelet, ExtensionMode mode) {
  expects(decomposition.levels() >= 1, "waverec: empty decomposition");
  expects(decomposition.signal_lengths.size() == decomposition.levels(),
          "waverec: corrupt decomposition metadata");
  RealVector current = decomposition.approx;
  for (std::size_t level = decomposition.levels(); level-- > 0;) {
    current = idwt_single(current, decomposition.details[level], wavelet, mode,
                          decomposition.signal_lengths[level]);
  }
  return current;
}

RealVector wavelet_energy_distribution(const WaveletDecomposition& d) {
  RealVector energies;
  wavelet_energy_distribution_into(d, energies);
  return energies;
}

void wavelet_energy_distribution_into(const WaveletDecomposition& d,
                                      RealVector& out) {
  RealVector& energies = out;
  energies.clear();
  energies.reserve(d.levels() + 1);
  Real total = 0.0;
  for (const auto& detail : d.details) {
    Real e = 0.0;
    for (const Real v : detail) {
      e += v * v;
    }
    energies.push_back(e);
    total += e;
  }
  Real approx_energy = 0.0;
  for (const Real v : d.approx) {
    approx_energy += v * v;
  }
  energies.push_back(approx_energy);
  total += approx_energy;
  if (total > 0.0) {
    for (auto& e : energies) {
      e /= total;
    }
  }
}

}  // namespace esl::dsp

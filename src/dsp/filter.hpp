// Digital filtering: biquad sections, Butterworth IIR design (bilinear
// transform), RBJ notch, and windowed-sinc FIR design.
//
// The EEG simulator uses these to shape background activity, and the
// acquisition front-end model offers the standard 0.5 Hz high-pass /
// power-line notch conditioning chain.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "dsp/window.hpp"

namespace esl::dsp {

/// Second-order IIR section, direct form II transposed.
/// y[n] = (b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]) / a0.
struct Biquad {
  Real b0 = 1.0, b1 = 0.0, b2 = 0.0;
  Real a0 = 1.0, a1 = 0.0, a2 = 0.0;

  /// Magnitude response at the given frequency.
  Real magnitude_at(Real frequency_hz, Real sample_rate_hz) const;
};

/// Stateful cascade of biquad sections.
class BiquadCascade {
 public:
  explicit BiquadCascade(std::vector<Biquad> sections);

  /// Processes one sample through every section.
  Real process(Real input);

  /// Filters a whole signal (stateful; call reset() between signals).
  RealVector filter(std::span<const Real> signal);

  /// Clears the delay lines.
  void reset();

  const std::vector<Biquad>& sections() const { return sections_; }

  /// Cascade magnitude response at the given frequency.
  Real magnitude_at(Real frequency_hz, Real sample_rate_hz) const;

 private:
  std::vector<Biquad> sections_;
  std::vector<std::array<Real, 2>> state_;
};

/// Butterworth low-pass of even or odd order via bilinear transform.
BiquadCascade butterworth_lowpass(std::size_t order, Real cutoff_hz,
                                  Real sample_rate_hz);

/// Butterworth high-pass of even or odd order via bilinear transform.
BiquadCascade butterworth_highpass(std::size_t order, Real cutoff_hz,
                                   Real sample_rate_hz);

/// Band-pass as a high-pass/low-pass cascade (order each).
BiquadCascade butterworth_bandpass(std::size_t order, Real low_hz, Real high_hz,
                                   Real sample_rate_hz);

/// RBJ cookbook notch at `center_hz` with the given quality factor.
Biquad notch(Real center_hz, Real quality, Real sample_rate_hz);

/// Zero-phase filtering: forward pass, reverse, forward, reverse.
/// Doubles the effective order and removes group delay.
RealVector filtfilt(BiquadCascade cascade, std::span<const Real> signal);

/// Windowed-sinc FIR low-pass taps (odd `taps` recommended).
RealVector fir_lowpass(std::size_t taps, Real cutoff_hz, Real sample_rate_hz,
                       WindowKind window = WindowKind::kHamming);

/// Windowed-sinc FIR high-pass taps (spectral inversion; `taps` must be odd).
RealVector fir_highpass(std::size_t taps, Real cutoff_hz, Real sample_rate_hz,
                        WindowKind window = WindowKind::kHamming);

/// Windowed-sinc FIR band-pass taps (`taps` must be odd).
RealVector fir_bandpass(std::size_t taps, Real low_hz, Real high_hz,
                        Real sample_rate_hz,
                        WindowKind window = WindowKind::kHamming);

/// Convolves the signal with FIR taps; output is time-aligned (the group
/// delay of (taps-1)/2 samples is compensated, edges use zero padding).
RealVector fir_filter(std::span<const Real> taps, std::span<const Real> signal);

/// Anti-aliased integer-factor decimation (FIR low-pass then keep every
/// `factor`-th sample).
RealVector decimate(std::span<const Real> signal, std::size_t factor,
                    Real sample_rate_hz);

}  // namespace esl::dsp

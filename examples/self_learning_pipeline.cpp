// The full Fig.-1 temporal scenario: a wearable monitors one patient over
// a stream of records. Early seizures are missed (no trained detector),
// the patient presses the button after recovering, Algorithm 1 labels the
// last hour, and the real-time classifier is retrained — becoming more
// robust with every missed seizure.
//
// Build & run:  ./build/examples/example_self_learning_pipeline [patient 1-9]
#include <cstdio>
#include <cstdlib>

#include "core/deviation_metric.hpp"
#include "core/self_learning.hpp"
#include "sim/cohort.hpp"

int main(int argc, char** argv) {
  using namespace esl;

  std::size_t patient = 4;  // patient 5: strong, clean discharges
  if (argc > 1) {
    const long requested = std::atol(argv[1]);
    if (requested >= 1 && requested <= 9) {
      patient = static_cast<std::size_t>(requested - 1);
    }
  }

  const sim::CohortSimulator simulator;
  const auto events = simulator.events_for_patient(patient);
  std::printf("patient %zu: %zu seizures, average duration %.1f s\n",
              patient + 1, events.size(),
              simulator.average_seizure_duration(patient));

  core::SelfLearningConfig config;
  config.average_seizure_duration_s =
      simulator.average_seizure_duration(patient);
  core::SelfLearningPipeline pipeline(config);

  // A little seizure-free data recorded before the first event
  // (negatives for the very first training round).
  pipeline.add_background_record(
      simulator.synthesize_background_record(patient, 300.0, 0));

  std::printf("\n%-10s %-16s %-22s %-14s\n", "seizure", "detector state",
              "outcome", "label delta(s)");
  for (std::size_t e = 0; e < events.size(); ++e) {
    // Each event arrives as "the last hour of signal" around the seizure.
    const signal::EegRecord record =
        simulator.synthesize_sample(events[e], 100 + e, 900.0, 1100.0);
    const bool was_ready = pipeline.detector_ready();
    const core::MonitoringOutcome outcome = pipeline.monitor(record);

    if (outcome.alarm_raised) {
      std::printf("%-10zu %-16s %-22s %-14s\n", e + 1,
                  was_ready ? "trained" : "untrained",
                  "ALARM raised in time", "-");
    } else {
      const Seconds delta = core::deviation_seconds(
          record.seizures().front(), outcome.label);
      std::printf("%-10zu %-16s %-22s %-14.1f\n", e + 1,
                  was_ready ? "trained" : "untrained",
                  "missed -> button press", delta);
    }
  }

  std::printf("\nlabeled seizures in personal training set: %zu\n",
              pipeline.labeled_seizures());
  std::printf("real-time detector trained: %s\n",
              pipeline.detector_ready() ? "yes" : "no");
  std::printf("\nThe expected pattern: the first seizure is always missed\n"
              "(nothing to train on yet); once one or two seizures are\n"
              "labeled, the personalized detector starts raising alarms in\n"
              "real time and the button press is no longer needed.\n");
  return 0;
}

// Quickstart: the minimal end-to-end use of the library.
//
//  1. Get a labeled EEG record (here: one synthetic 30-minute record with
//     a single seizure; with real data, load a CSV via
//     signal::read_csv_file instead).
//  2. Extract the paper's 10-feature set on 4 s / 75 %-overlap windows.
//  3. Run the minimally-supervised a-posteriori detector (Algorithm 1)
//     with the patient's average seizure duration as the only input.
//  4. Compare the produced label against the ground truth with the
//     paper's deviation metric.
//
// Build & run:  ./build/examples/example_quickstart
#include <cstdio>

#include "core/aposteriori.hpp"
#include "core/deviation_metric.hpp"
#include "features/extractor.hpp"
#include "features/paper_features.hpp"
#include "sim/cohort.hpp"

int main() {
  using namespace esl;

  // 1. A record: patient 5 of the synthetic cohort, seizure 1, ~30 min.
  const sim::CohortSimulator simulator;
  const auto events = simulator.events_for_patient(4);
  const signal::EegRecord record =
      simulator.synthesize_sample(events[0], /*sample_label=*/0, 1700.0, 1900.0);
  const signal::Interval truth = record.seizures().front();
  std::printf("record '%s': %.0f s of 2-channel EEG at %.0f Hz\n",
              record.id().c_str(), record.duration_seconds(),
              record.sample_rate_hz());
  std::printf("ground-truth seizure: [%.1f, %.1f] s\n", truth.onset,
              truth.offset);

  // 2. Windowed features (4 s windows, 75 % overlap -> one row/second).
  const features::PaperFeatureExtractor extractor;
  const features::WindowedFeatures windowed =
      features::extract_windowed_features(record, extractor);
  std::printf("extracted %zu windows x %zu features\n", windowed.count(),
              windowed.features.cols());

  // 3. Label the seizure a posteriori. W comes from the "medical expert":
  //    the patient's average seizure duration.
  const Seconds w = simulator.average_seizure_duration(4);
  const core::APosterioriDetector detector;
  const signal::Interval label = detector.label(windowed, w);
  std::printf("algorithm label:      [%.1f, %.1f] s (W = %.1f s)\n",
              label.onset, label.offset, w);

  // 4. Score it.
  std::printf("deviation delta      = %.1f s (Eq. 1)\n",
              core::deviation_seconds(truth, label));
  std::printf("normalized delta     = %.4f (Eq. 2; 1 = perfect)\n",
              core::deviation_normalized(truth, label,
                                         record.duration_seconds()));
  return 0;
}

// Wearable energy planning: explores the platform model of §V-B/§VI-C.
// Given a patient's seizure frequency and a battery size, how long does
// the device live, and what dominates the energy budget? Also answers the
// sizing question in reverse: what battery is needed for a target
// lifetime?
//
// Build & run:  ./build/examples/example_wearable_energy_planner
#include <cstdio>

#include "platform/wearable.hpp"

int main() {
  using namespace esl::platform;

  WearableConfig config;  // the paper's STM32L151 + ADS1299 + 570 mAh

  std::printf("platform: STM32L151 @32 MHz, ADS1299 AFE, %.0f mAh battery\n\n",
              config.battery_mah);

  // 1. Lifetime vs seizure frequency.
  std::printf("lifetime vs seizure rate (full self-learning system):\n");
  std::printf("  %-24s %-16s %-18s\n", "seizure rate", "lifetime (days)",
              "labeling share (%)");
  for (const double per_month : {1.0, 4.0, 10.0, 30.0, 60.0}) {
    const LifetimeReport report =
        lifetime_full_system(config, per_month / 30.0);
    std::printf("  %-24.1f %-16.2f %-18.2f\n", per_month,
                report.lifetime_days(), 100.0 * report.rows[2].energy_share);
  }

  // 2. What battery reaches a one-week lifetime at 1 seizure/day?
  std::printf("\nbattery sizing for target lifetimes (1 seizure/day):\n");
  std::printf("  %-20s %-18s\n", "target (days)", "battery (mAh)");
  const LifetimeReport worst = lifetime_full_system(config, 1.0);
  for (const double target_days : {2.0, 3.0, 5.0, 7.0, 14.0}) {
    const double mah = worst.total_average_current_ma * target_days * 24.0;
    std::printf("  %-20.1f %-18.0f\n", target_days, mah);
  }

  // 3. The value of duty-cycling the classifier: what if the supervised
  //    detector could run at lower duty (e.g. hierarchical wake-up as in
  //    the self-aware follow-up work [24])?
  std::printf("\nsensitivity to the detection duty cycle (1 seizure/day):\n");
  std::printf("  %-20s %-16s\n", "detection duty (%)", "lifetime (days)");
  for (const double duty : {0.75, 0.50, 0.25, 0.10}) {
    WearableConfig variant = config;
    variant.detection_duty = duty;
    std::printf("  %-20.0f %-16.2f\n", 100.0 * duty,
                lifetime_full_system(variant, 1.0).lifetime_days());
  }

  // 4. Memory plan.
  std::printf("\nmemory plan for the 1 h a-posteriori buffer:\n");
  std::printf("  raw signal:           %7.0f KB (RAM %.0f KB -> must go to Flash)\n",
              raw_signal_kb(config, 3600.0), config.ram_kb);
  std::printf("  10 features @ f32:    %7.0f KB\n",
              feature_buffer_kb(3600.0, 10, 4));
  std::printf("  10 features @ f64:    %7.0f KB\n",
              feature_buffer_kb(3600.0, 10, 8));
  std::printf("  paper budget:         %7.0f KB (fits %0.f KB Flash: %s)\n",
              k_paper_hour_buffer_kb, config.flash_kb,
              hour_buffer_fits(config, k_paper_hour_buffer_kb) ? "yes" : "no");

  // 5. The real-time claim for the labeling pass.
  const TimingEstimate timing = labeling_time_on_mcu(3600.0, 60.0, 10);
  std::printf("\nlabeling one hour of signal on the MCU: %.0f s "
              "(%.2f s per signal second; paper: ~1.0)\n",
              timing.seconds_on_mcu, timing.seconds_per_signal_second);
  return 0;
}

// Command-line labeling tool: run Algorithm 1 on your own recording.
//
// Usage:
//   example_label_record <record.{csv,edf}> <avg_seizure_seconds>
//                        [annotations.csv]
//
// The record must contain the F7-T3 and F8-T4 channels (CSV format of
// signal/record_io.hpp, or 16-bit EDF as used by CHB-MIT). If a
// CHB-MIT-style annotation sidecar is given ("onset,offset" per line),
// the tool also scores the label with the paper's deviation metric.
//
// With no arguments, a demo record is synthesized and labeled.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/aposteriori.hpp"
#include "core/deviation_metric.hpp"
#include "features/extractor.hpp"
#include "features/paper_features.hpp"
#include "signal/edf.hpp"
#include "signal/record_io.hpp"
#include "sim/cohort.hpp"

namespace {

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esl;

  signal::EegRecord record(256.0, "demo");
  Seconds w = 60.0;
  bool demo = argc < 3;
  if (demo) {
    std::printf("no input given — synthesizing a demo record "
                "(usage: %s <record.{csv,edf}> <avg_seizure_s> "
                "[annotations.csv])\n\n",
                argv[0]);
    const sim::CohortSimulator simulator;
    const auto events = simulator.events_for_patient(0);
    record = simulator.synthesize_sample(events[0], 0, 1700.0, 1900.0);
    w = simulator.average_seizure_duration(0);
  } else {
    const std::string path = argv[1];
    w = std::atof(argv[2]);
    if (w <= 0.0) {
      std::fprintf(stderr, "error: average seizure duration must be > 0\n");
      return 1;
    }
    try {
      record = ends_with(path, ".edf") ? signal::read_edf_file(path)
                                       : signal::read_csv_file(path);
      if (argc > 3) {
        for (const auto& a : signal::read_annotation_sidecar(argv[3])) {
          record.add_annotation(a);
        }
      }
    } catch (const Error& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
  }

  std::printf("record '%s': %.0f s, %zu channels at %.0f Hz\n",
              record.id().c_str(), record.duration_seconds(),
              record.channel_count(), record.sample_rate_hz());

  const features::PaperFeatureExtractor extractor;
  const features::WindowedFeatures windowed =
      features::extract_windowed_features(record, extractor);

  const core::APosterioriDetector detector;
  core::APosterioriResult diagnostics;
  const signal::Interval label = detector.label(windowed, w, &diagnostics);

  std::printf("a-posteriori label: [%.1f, %.1f] s  (W = %.1f s, peak "
              "distance %.3f)\n",
              label.onset, label.offset, w, diagnostics.peak_distance);

  if (!record.seizures().empty()) {
    const signal::Interval truth = record.seizures().front();
    std::printf("annotated seizure:  [%.1f, %.1f] s\n", truth.onset,
                truth.offset);
    std::printf("delta = %.1f s, delta_norm = %.4f\n",
                core::deviation_seconds(truth, label),
                core::deviation_normalized(truth, label,
                                           record.duration_seconds()));
  }
  return 0;
}

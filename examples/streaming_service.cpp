// A miniature fleet-monitoring service on top of the streaming engine.
//
// Synthesizes a cohort of patients, trains a shared fleet detector on one
// patient's labeled record, then streams live EEG for a handful of
// concurrent sessions in 1-second chunks through the Engine: batched
// inference per poll, alarm hooks, and — for one cold-start patient with
// a personal self-learning pipeline — a missed seizure, a patient button
// press, Algorithm-1 a-posteriori labeling, and personalization.
//
//   ./streaming_service
#include <cstdio>
#include <vector>

#include "core/realtime_detector.hpp"
#include "engine/engine.hpp"
#include "ml/dataset.hpp"
#include "sim/cohort.hpp"

namespace {

using namespace esl;

std::vector<std::span<const Real>> chunk_views(const signal::EegRecord& record,
                                               std::size_t offset,
                                               std::size_t count) {
  std::vector<std::span<const Real>> views;
  for (std::size_t c = 0; c < record.channel_count(); ++c) {
    views.push_back(
        std::span<const Real>(record.channel(c).samples).subspan(offset, count));
  }
  return views;
}

}  // namespace

int main() {
  std::printf("=== streaming multi-patient detection service ===\n\n");

  // --- fleet model: trained offline on one labeled record of patient 5.
  const sim::CohortSimulator simulator;
  const auto events = simulator.events_for_patient(4);
  const signal::EegRecord train_record =
      simulator.synthesize_sample(events[0], 0, 500.0, 600.0);
  ml::Dataset train =
      core::build_window_dataset(train_record, train_record.seizures());
  Rng rng(1);
  auto fleet = std::make_shared<core::RealtimeDetector>();
  fleet->fit(ml::balance_classes(train, rng), 7);
  std::printf("fleet detector trained: %zu windows, %zu seizure windows\n",
              train.size(), train.positives());

  // --- engine with a hierarchical stage-1 screen fitted on the same set.
  engine::EngineConfig config;
  config.screening =
      engine::ScreeningConfig{14, core::fit_stage1_threshold(train, 0.98, 14)};
  engine::Engine engine(fleet, config);

  engine.set_alarm_hook([](const engine::Detection& d) {
    std::printf("  [alarm] session %llu at t=%.0fs (window %zu)\n",
                static_cast<unsigned long long>(d.session_id),
                d.window_start_s, d.window_index);
  });
  engine.set_label_hook([](std::uint64_t id, const signal::Interval& label) {
    std::printf("  [label] session %llu: a-posteriori seizure "
                "[%.0f, %.0f]s in its history buffer\n",
                static_cast<unsigned long long>(id), label.onset,
                label.offset);
  });

  // --- sessions: a small cohort slice streaming concurrently. Session 0
  // follows a cold-start self-learning patient (personal pipeline, no
  // usable fleet coverage assumed); the rest ride the fleet model.
  const std::size_t fleet_sessions = 7;
  engine::SessionConfig personal_config;
  personal_config.history_seconds = 600.0;  // retro buffer for Algorithm 1
  personal_config.use_fleet_model = false;  // patient-specific model only
  const std::uint64_t personal = engine.add_session(personal_config);
  core::SelfLearningConfig learn;
  learn.average_seizure_duration_s = simulator.average_seizure_duration(2);
  engine.attach_self_learning(personal, learn);
  for (std::size_t s = 0; s < fleet_sessions; ++s) {
    engine.add_session();
  }
  std::printf("%zu sessions online (session 0 self-learning)\n\n",
              engine.session_count());

  // --- live signal: patient 3's seizure record for the self-learning
  // session, held-out records (seizure + background) for the fleet.
  const auto personal_events = simulator.events_for_patient(2);
  const signal::EegRecord personal_record =
      simulator.synthesize_sample(personal_events[1], 3, 500.0, 600.0);
  std::vector<signal::EegRecord> fleet_records;
  for (std::size_t s = 0; s < fleet_sessions; ++s) {
    fleet_records.push_back(
        s % 2 == 0 ? simulator.synthesize_sample(events[1], 10 + s, 500.0, 600.0)
                   : simulator.synthesize_background_record(4, 500.0, 20 + s));
  }

  // --- stream: 1-second chunks, one batched poll per round.
  const auto chunk = static_cast<std::size_t>(simulator.sample_rate_hz());
  const std::size_t rounds = personal_record.length_samples() / chunk;
  for (std::size_t round = 0; round < rounds; ++round) {
    engine.ingest(personal, chunk_views(personal_record, round * chunk, chunk));
    for (std::size_t s = 0; s < fleet_sessions; ++s) {
      const std::size_t length = fleet_records[s].length_samples();
      if ((round + 1) * chunk <= length) {
        engine.ingest(1 + s, chunk_views(fleet_records[s], round * chunk, chunk));
      }
    }
    engine.poll();
  }

  // --- the self-learning patient's seizure was missed (cold model):
  // the patient presses the button, the history is labeled and learned.
  if (engine.session(personal).alarms() == 0) {
    std::printf("\nsession 0 missed its seizure -> patient trigger\n");
    engine.patient_trigger(personal);
    const signal::Interval truth = personal_record.seizures().front();
    std::printf("  true seizure was [%.0f, %.0f]s\n", truth.onset,
                truth.offset);
  }

  // --- replay the same patient with the personalized model.
  std::printf("\nreplaying session 0's patient with the learned model:\n");
  for (std::size_t round = 0; round < rounds; ++round) {
    engine.ingest(personal, chunk_views(personal_record, round * chunk, chunk));
    engine.poll();
  }

  const engine::EngineStats& stats = engine.stats();
  std::printf("\n=== engine stats ===\n");
  std::printf("windows classified : %zu\n", stats.windows_classified);
  std::printf("forest windows     : %zu (batched over %zu forest passes)\n",
              stats.forest_windows, stats.batches);
  std::printf("screened out       : %zu (stage-1 gate, no forest)\n",
              stats.screened_windows);
  std::printf("cold-start windows : %zu (no model yet)\n",
              stats.unmodeled_windows);
  std::printf("alarms             : %zu\n", stats.alarms);
  std::printf("polls              : %zu\n", stats.polls);
  return 0;
}

// A miniature fleet-monitoring service on top of the sharded
// DetectionService.
//
// Synthesizes a cohort of patients, trains a shared fleet detector on one
// patient's labeled record, then streams live EEG for a handful of
// concurrent sessions in 1-second chunks through a two-shard
// DetectionService: sessions hash-partitioned across shards, batched
// inference per shard, alarm hooks, a drained DetectionSink, a mid-stream
// hot-swap of the compiled fleet artifact (RealtimeDetector::compile ->
// swap_model, no flush or pause, bit-identical detections), and — for
// one cold-start patient with a personal self-learning pipeline — a
// missed seizure, a patient button press, Algorithm-1 a-posteriori
// labeling, and personalization, all through the facade.
//
//   ./streaming_service [inline|threads]   (default: threads)
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/realtime_detector.hpp"
#include "engine/service.hpp"
#include "ml/dataset.hpp"
#include "sim/cohort.hpp"

namespace {

using namespace esl;

std::vector<std::span<const Real>> chunk_views(const signal::EegRecord& record,
                                               std::size_t offset,
                                               std::size_t count) {
  std::vector<std::span<const Real>> views;
  for (std::size_t c = 0; c < record.channel_count(); ++c) {
    views.push_back(
        std::span<const Real>(record.channel(c).samples).subspan(offset, count));
  }
  return views;
}

}  // namespace

int main(int argc, char** argv) {
  const bool threaded = argc < 2 || std::strcmp(argv[1], "inline") != 0;
  std::printf("=== sharded multi-patient detection service (%s backend) ===\n\n",
              threaded ? "threads" : "inline");

  // --- fleet model: trained offline on one labeled record of patient 5.
  const sim::CohortSimulator simulator;
  const auto events = simulator.events_for_patient(4);
  const signal::EegRecord train_record =
      simulator.synthesize_sample(events[0], 0, 500.0, 600.0);
  ml::Dataset train =
      core::build_window_dataset(train_record, train_record.seizures());
  Rng rng(1);
  auto fleet = std::make_shared<core::RealtimeDetector>();
  fleet->fit(ml::balance_classes(train, rng), 7);
  std::printf("fleet detector trained: %zu windows, %zu seizure windows\n",
              train.size(), train.positives());

  // --- two-shard service with a hierarchical stage-1 screen per shard.
  engine::ServiceConfig config;
  config.shards = 2;
  config.engine.screening =
      engine::ScreeningConfig{14, core::fit_stage1_threshold(train, 0.98, 14)};
  std::unique_ptr<engine::ExecutionBackend> backend;
  if (threaded) {
    backend = std::make_unique<engine::ThreadPoolBackend>();
  }
  engine::DetectionService service(fleet, config, std::move(backend));

  service.set_alarm_hook([](const engine::Detection& d) {
    const engine::SessionHandle handle{d.session_id};
    std::printf("  [alarm] session %llu (shard %u) at t=%.0fs (window %zu)\n",
                static_cast<unsigned long long>(handle.local_id()),
                handle.shard(), d.window_start_s, d.window_index);
  });
  service.set_label_hook(
      [](engine::SessionHandle handle, const signal::Interval& label) {
        std::printf("  [label] session %llu (shard %u): a-posteriori seizure "
                    "[%.0f, %.0f]s in its history buffer\n",
                    static_cast<unsigned long long>(handle.local_id()),
                    handle.shard(), label.onset, label.offset);
      });

  // --- sessions: a small cohort slice streaming concurrently. The first
  // follows a cold-start self-learning patient (personal pipeline, no
  // usable fleet coverage assumed); the rest ride the fleet model,
  // hash-partitioned across the two shards.
  const std::size_t fleet_sessions = 7;
  engine::SessionConfig personal_config;
  personal_config.history_seconds = 600.0;  // retro buffer for Algorithm 1
  personal_config.use_fleet_model = false;  // patient-specific model only
  const engine::SessionHandle personal =
      service.create_session(personal_config);
  core::SelfLearningConfig learn;
  learn.average_seizure_duration_s = simulator.average_seizure_duration(2);
  service.attach_self_learning(personal, learn);
  std::vector<engine::SessionHandle> fleet_handles;
  for (std::size_t s = 0; s < fleet_sessions; ++s) {
    fleet_handles.push_back(service.create_session());
  }
  std::printf("%zu sessions online across %zu shards "
              "(the self-learning one on shard %u)\n\n",
              service.session_count(), service.shard_count(),
              personal.shard());

  // --- live signal: patient 3's seizure record for the self-learning
  // session, held-out records (seizure + background) for the fleet.
  const auto personal_events = simulator.events_for_patient(2);
  const signal::EegRecord personal_record =
      simulator.synthesize_sample(personal_events[1], 3, 500.0, 600.0);
  std::vector<signal::EegRecord> fleet_records;
  for (std::size_t s = 0; s < fleet_sessions; ++s) {
    fleet_records.push_back(
        s % 2 == 0 ? simulator.synthesize_sample(events[1], 10 + s, 500.0, 600.0)
                   : simulator.synthesize_background_record(4, 500.0, 20 + s));
  }

  // --- stream: 1-second chunks, one barrier flush per round; detections
  // accumulate in the built-in sink and are drained once per round.
  const auto chunk = static_cast<std::size_t>(simulator.sample_rate_hz());
  const std::size_t rounds = personal_record.length_samples() / chunk;
  std::vector<engine::Detection> detections;
  std::size_t seizure_windows = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    if (round == rounds / 2) {
      // Mid-stream model deploy: compile the fleet forest into its flat
      // SoA artifact and swap it into every fleet session — no flush, no
      // pause, and (compiled inference being bit-identical) no change in
      // any detection.
      const auto compiled = fleet->compile();
      for (const engine::SessionHandle& handle : fleet_handles) {
        service.swap_model(handle, compiled);
      }
      std::printf("  [deploy] compiled fleet artifact hot-swapped into %zu "
                  "sessions (%zu trees, %zu nodes, depth %zu)\n",
                  fleet_handles.size(), compiled->tree_count(),
                  compiled->node_count(), compiled->max_depth());
    }
    service.ingest(personal,
                   chunk_views(personal_record, round * chunk, chunk));
    for (std::size_t s = 0; s < fleet_sessions; ++s) {
      const std::size_t length = fleet_records[s].length_samples();
      if ((round + 1) * chunk <= length) {
        service.ingest(fleet_handles[s],
                       chunk_views(fleet_records[s], round * chunk, chunk));
      }
    }
    service.flush();
    detections.clear();
    for (service.drain(detections); const engine::Detection& d : detections) {
      seizure_windows += d.label == 1 ? 1 : 0;
    }
  }
  std::printf("streamed %zu rounds; %zu seizure-positive windows so far\n",
              rounds, seizure_windows);

  // --- the self-learning patient's seizure was missed (cold model):
  // the patient presses the button, the history is labeled and learned.
  if (service.session_alarms(personal) == 0) {
    std::printf("\nself-learning session missed its seizure -> patient "
                "trigger\n");
    service.patient_trigger(personal);
    const signal::Interval truth = personal_record.seizures().front();
    std::printf("  true seizure was [%.0f, %.0f]s\n", truth.onset,
                truth.offset);
  }

  // --- replay the same patient with the personalized model.
  std::printf("\nreplaying the patient with the learned model:\n");
  for (std::size_t round = 0; round < rounds; ++round) {
    service.ingest(personal,
                   chunk_views(personal_record, round * chunk, chunk));
    service.flush();
  }
  detections.clear();
  service.drain(detections);

  const engine::EngineStats stats = service.stats();
  std::printf("\n=== service stats (aggregated over %zu shards) ===\n",
              service.shard_count());
  std::printf("windows classified : %zu\n", stats.windows_classified);
  std::printf("forest windows     : %zu (batched over %zu forest passes)\n",
              stats.forest_windows, stats.batches);
  std::printf("screened out       : %zu (stage-1 gate, no forest)\n",
              stats.screened_windows);
  std::printf("cold-start windows : %zu (no model yet)\n",
              stats.unmodeled_windows);
  std::printf("alarms             : %zu\n", stats.alarms);
  std::printf("polls              : %zu\n", stats.polls);
  return 0;
}

// Cohort explorer: generates the synthetic CHB-MIT-style cohort, prints
// its composition, and exports one record + its feature matrix to CSV so
// the data can be inspected (or replaced by real recordings in the same
// format).
//
// Build & run:  ./build/examples/example_cohort_explorer [output_dir]
#include <cstdio>
#include <string>

#include "common/statistics.hpp"
#include "features/extractor.hpp"
#include "features/paper_features.hpp"
#include "signal/record_io.hpp"
#include "sim/cohort.hpp"

int main(int argc, char** argv) {
  using namespace esl;
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  const sim::CohortSimulator simulator;
  std::printf("synthetic cohort (stands in for the CHB-MIT subset of SV-A):\n");
  std::printf("%-4s %-10s %-18s %-14s %-10s\n", "ID", "seizures",
              "mean duration (s)", "ictal chirp", "artifacts");
  for (std::size_t p = 0; p < simulator.cohort().size(); ++p) {
    const auto& profile = simulator.cohort()[p];
    std::printf("%-4d %-10zu %-18.1f %.1f->%.1fHz  %-10zu\n", profile.id,
                profile.seizure_count, simulator.average_seizure_duration(p),
                profile.ictal_start_hz, profile.ictal_end_hz,
                profile.artifact_seizure_indices.size() +
                    profile.postictal_artifact_seizure_indices.size());
  }
  std::printf("total seizures: %zu (Table II: 45)\n",
              simulator.events().size());

  // Export one short record with its seizure annotation.
  const auto events = simulator.events_for_patient(2);  // patient 3
  const signal::EegRecord record =
      simulator.synthesize_sample(events[1], 0, 600.0, 700.0);
  const std::string record_path = out_dir + "/esl_example_record.csv";
  signal::write_csv_file(record, record_path);
  std::printf("\nwrote %s (%.0f s, %zu channels, %zu annotations)\n",
              record_path.c_str(), record.duration_seconds(),
              record.channel_count(), record.annotations().size());

  // And its windowed 10-feature matrix.
  const features::PaperFeatureExtractor extractor;
  const features::WindowedFeatures windowed =
      features::extract_windowed_features(record, extractor);
  const std::string features_path = out_dir + "/esl_example_features.csv";
  {
    std::FILE* f = std::fopen(features_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", features_path.c_str());
      return 1;
    }
    std::fprintf(f, "time_s");
    for (const auto& name : extractor.feature_names()) {
      std::fprintf(f, ",%s", name.c_str());
    }
    std::fprintf(f, "\n");
    for (std::size_t w = 0; w < windowed.count(); ++w) {
      std::fprintf(f, "%.1f", windowed.window_start_s[w]);
      for (std::size_t c = 0; c < windowed.features.cols(); ++c) {
        std::fprintf(f, ",%.8g", windowed.features(w, c));
      }
      std::fprintf(f, "\n");
    }
    std::fclose(f);
  }
  std::printf("wrote %s (%zu windows x %zu features)\n", features_path.c_str(),
              windowed.count(), windowed.features.cols());

  // Show the ictal signature in feature space.
  const auto seizure = record.seizures().front();
  stats::RunningStats ictal_theta;
  stats::RunningStats background_theta;
  for (std::size_t w = 0; w < windowed.count(); ++w) {
    const Seconds t = windowed.window_start_s[w];
    if (t >= seizure.onset && t + 4.0 <= seizure.offset) {
      ictal_theta.add(windowed.features(w, 0));
    } else if (t + 4.0 < seizure.onset - 60.0 || t > seizure.offset + 90.0) {
      background_theta.add(windowed.features(w, 0));
    }
  }
  std::printf("\nF7T3 theta power: ictal mean %.1f vs background mean %.1f "
              "(x%.0f)\n",
              ictal_theta.mean(), background_theta.mean(),
              ictal_theta.mean() / background_theta.mean());
  return 0;
}

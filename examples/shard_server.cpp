// Standalone shard-server process: the serving front door from
// net/shard_server.hpp as a runnable binary.
//
// Trains the fleet detector (synthesized cohort, same recipe as the
// other examples), mounts an optional model registry directory, then
// listens for net/wire.hpp clients until SIGINT/SIGTERM. Any number of
// clients can connect concurrently — a RemoteBackend-driven
// DetectionService (see net/client.hpp), the engine_throughput bench
// in --connect mode, or another process speaking the frame protocol.
//
//   ./shard_server [--listen ADDR] [--shards N]
//                  [--backend inline|threads] [--registry DIR]
//
//   ADDR is "unix:PATH" or "tcp:HOST:PORT" (port 0 = ephemeral, the
//   resolved address is printed). Default: tcp:127.0.0.1:0.
//
// Try it end to end with two terminals:
//   ./shard_server --listen tcp:127.0.0.1:7700 --backend threads
//   ./engine_throughput --connect tcp:127.0.0.1:7700
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/realtime_detector.hpp"
#include "ml/dataset.hpp"
#include "net/shard_server.hpp"
#include "sim/cohort.hpp"

namespace {

using namespace esl;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  std::string listen = "tcp:127.0.0.1:0";
  std::size_t shards = 2;
  bool threaded = true;
  std::string registry;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      listen = value();
    } else if (arg == "--shards") {
      shards = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--backend") {
      const std::string backend = value();
      if (backend != "inline" && backend != "threads") {
        std::fprintf(stderr, "unknown --backend %s\n", backend.c_str());
        return 2;
      }
      threaded = backend == "threads";
    } else if (arg == "--registry") {
      registry = value();
    } else {
      std::fprintf(stderr,
                   "usage: shard_server [--listen ADDR] [--shards N] "
                   "[--backend inline|threads] [--registry DIR]\n");
      return 2;
    }
  }

  // Fleet model: trained on one labeled record of the synthesized
  // cohort, exactly like the in-process examples. A real deployment
  // would load a registry artifact instead; the point here is the
  // serving tier, not the training recipe.
  std::printf("training fleet detector...\n");
  const sim::CohortSimulator simulator;
  const auto events = simulator.events_for_patient(4);
  const signal::EegRecord train_record =
      simulator.synthesize_sample(events[0], 0, 500.0, 600.0);
  ml::Dataset train =
      core::build_window_dataset(train_record, train_record.seizures());
  Rng rng(1);
  auto fleet = std::make_shared<core::RealtimeDetector>();
  fleet->fit(ml::balance_classes(train, rng), 7);

  net::ShardServerConfig config;
  config.address = platform::SocketAddress::parse(listen);
  config.service.shards = shards;
  config.threaded_backend = threaded;
  config.registry_directory = registry;
  net::ShardServer server(fleet, config);
  server.start();
  std::printf("serving %zu shards (%s backend%s%s) on %s\n", shards,
              threaded ? "threads" : "inline",
              registry.empty() ? "" : ", registry ", registry.c_str(),
              server.address().to_string().c_str());
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!g_stop.load(std::memory_order_relaxed) && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  std::printf("stopping...\n");
  server.stop();
  const engine::EngineStats stats = server.service().stats();
  std::printf("served %zu sessions, %zu windows classified, %zu alarms\n",
              server.service().session_count(), stats.windows_classified,
              stats.alarms);
  return 0;
}

// Fuzz harness for the session ingest trust boundary
// (engine/patient_session.hpp).
//
// SessionConfig and raw sample chunks arrive from outside the process
// (radio packets, gateway config) — the boundary guards are
// validate(SessionConfig) and PatientSession::ingest's chunk checks.
// The harness splits each input blob in two:
//
//  1. The first bytes become a *raw* SessionConfig, bit-for-bit — every
//     double field sees NaNs, infinities, denormals, negative zeros —
//     and validate() runs on it unclamped. Accepted configs must be
//     safely constructible (this is how the unbounded-geometry lround
//     overflow was found; see validate()'s plausibility bounds).
//  2. The remainder drives ingest on a bounded-geometry session derived
//     from the same raw bits: adversarial chunk sizes (including empty,
//     single-sample, ragged, and wrong channel-count chunks) and sample
//     values reinterpreted from the input bytes (NaN/inf payloads
//     included), interleaved with observe_label and pending drains.
//
// Every esl::Error is a correct rejection; anything else is a finding.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "engine/patient_session.hpp"
#include "features/eglass_features.hpp"

namespace {

using esl::Real;
using esl::engine::PatientSession;
using esl::engine::SessionConfig;

/// Raw config material, memcpy'd straight off the input so every field
/// exercises the full bit pattern space.
struct RawConfig {
  double sample_rate_hz;
  double window_seconds;
  double overlap;
  double history_seconds;
  std::uint32_t alarm_consecutive;
  std::uint8_t use_fleet_model;
  std::uint8_t channels;
  std::uint16_t flags;
};

SessionConfig to_session_config(const RawConfig& raw) {
  SessionConfig config;
  config.sample_rate_hz = static_cast<Real>(raw.sample_rate_hz);
  config.window_seconds = static_cast<Real>(raw.window_seconds);
  config.overlap = static_cast<Real>(raw.overlap);
  config.alarm_consecutive = raw.alarm_consecutive;
  config.history_seconds = static_cast<Real>(raw.history_seconds);
  config.use_fleet_model = (raw.use_fleet_model & 1) != 0;
  return config;
}

/// Folds a raw double into [lo, hi] deterministically, so hostile bits
/// still vary the bounded geometry instead of collapsing to a default.
double folded(double value, double lo, double hi) {
  if (!std::isfinite(value)) {
    return lo;
  }
  const double span = hi - lo;
  const double wrapped = std::fabs(std::fmod(value, span));
  return lo + (std::isfinite(wrapped) ? wrapped : 0.0);
}

/// Ingest-path session: geometry folded into cheap-but-varied ranges
/// (the unbounded raw config is validate()'s job, stage 1). Windows stay
/// tiny so tens of adversarial chunks complete within the fuzz budget.
SessionConfig bounded_config(const RawConfig& raw) {
  SessionConfig config;
  config.sample_rate_hz =
      static_cast<Real>(folded(raw.sample_rate_hz, 4.0, 64.0));
  config.window_seconds =
      static_cast<Real>(folded(raw.window_seconds, 0.25, 2.0));
  config.overlap = static_cast<Real>(folded(raw.overlap, 0.0, 0.9375));
  config.alarm_consecutive = 1 + raw.alarm_consecutive % 4;
  config.history_seconds =
      (raw.flags & 1) != 0
          ? static_cast<Real>(folded(raw.history_seconds, 4.0, 16.0))
          : Real{0.0};
  config.use_fleet_model = (raw.use_fleet_model & 1) != 0;
  return config;
}

void drive_ingest(const RawConfig& raw, std::span<const std::uint8_t> tape) {
  const std::size_t channels = 1 + raw.channels % 2;
  const esl::features::EglassFeatureExtractor extractor(channels);
  PatientSession session(raw.flags, extractor, bounded_config(raw));

  // Reinterpret the tape as sample payloads: arbitrary bit patterns,
  // so NaNs, infinities and denormals flow through the DSP pipeline.
  std::vector<Real> samples(tape.size() / sizeof(Real));
  std::memcpy(samples.data(), tape.data(),
              samples.size() * sizeof(Real));

  std::size_t cursor = 0;
  std::size_t step = 0;
  while (cursor < samples.size() && step < 64) {
    // Chunk length and shape decided by the tape itself.
    const std::uint8_t knob = tape[(step * 7) % (tape.empty() ? 1 : tape.size())];
    const std::size_t want = static_cast<std::size_t>(knob) % 97;
    const std::size_t length = std::min(want, samples.size() - cursor);

    std::vector<std::span<const Real>> chunk;
    const std::span<const Real> block(samples.data() + cursor, length);
    const std::size_t shape = knob % 16;
    if (shape == 13) {
      // Wrong channel count: must be rejected without touching state.
      chunk.assign(channels + 1, block);
    } else if (shape == 14 && length > 0) {
      // Ragged lengths: equally rejected.
      chunk.assign(channels, block);
      chunk.back() = block.first(length - 1);
    } else {
      chunk.assign(channels, block);
    }

    try {
      session.ingest(chunk);
    } catch (const esl::InvalidArgument&) {
      // Malformed chunk correctly rejected; the stream must still work.
    }
    cursor += length;
    ++step;

    if (shape == 15) {
      for (std::size_t r = 0; r < session.pending().rows(); ++r) {
        session.observe_label(static_cast<int>(knob & 1));
      }
      session.clear_pending();
    }
  }

  // The post-conditions any caller relies on after arbitrary traffic.
  (void)session.alarms();
  (void)session.buffered_samples();
  if (session.windows_emitted() > 0) {
    (void)session.window_start_s(session.windows_emitted() - 1);
  }
  if (session.history_enabled()) {
    try {
      (void)session.history_record("fuzz");
    } catch (const esl::InvalidArgument&) {
      // Less than one window buffered yet.
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < sizeof(RawConfig)) {
    return 0;
  }
  RawConfig raw;
  std::memcpy(&raw, data, sizeof(raw));

  // Stage 1: the validation boundary on fully hostile bits.
  try {
    validate(to_session_config(raw));
  } catch (const esl::InvalidArgument&) {
    // Rejected — correct for almost every random bit pattern.
  }

  // Stage 2: the ingest path under adversarial traffic.
  try {
    drive_ingest(raw, {data + sizeof(raw), size - sizeof(raw)});
  } catch (const esl::Error&) {
    // Boundary rejection (e.g. a bounded config still invalid).
  }
  return 0;
}

// Fuzz harness for the wire-protocol trust boundary (net/wire.hpp).
//
// Wire bytes are the least-trusted input in the repo: anything can
// connect to a ShardServer and send anything. This harness drives the
// byte->frame seam with no socket in sight — the blob is replayed as a
// packetized stream through FrameBuffer (the server's reassembly path)
// and every complete frame is pushed through parse_frame plus its
// type's payload decoder, touching every byte the returned views claim.
// Every input must either be rejected with an esl::Error or decode into
// views that stay inside the blob; any other outcome (signal, sanitizer
// report, unhandled exception) is a finding.
//
// Build: -DESL_FUZZ=ON. Under Clang this links libFuzzer; elsewhere
// fuzz/standalone_main.cpp replays corpus files so the checked-in
// corpus doubles as a regression suite on every toolchain.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "net/wire.hpp"

namespace {

using esl::Real;
namespace net = esl::net;

/// Forces a read of every byte a decoded view claims to own, so ASan
/// sees any span that escaped the blob.
template <typename T>
std::uint64_t checksum(std::span<const T> data) {
  std::uint64_t sum = 0;
  const auto bytes = std::as_bytes(data);
  for (const std::byte b : bytes) {
    sum = sum * 131 + static_cast<std::uint64_t>(b);
  }
  return sum;
}

std::uint64_t decode_payload(const net::FrameView& view) {
  switch (static_cast<net::FrameType>(view.header.type)) {
    case net::FrameType::kHello:
      return net::decode_hello(view).nonce;
    case net::FrameType::kHelloAck:
      return net::decode_hello_ack(view).nonce;
    case net::FrameType::kOpenSession:
      return net::decode_open_session(view).routing_key;
    case net::FrameType::kOpenSessionAck:
      return net::decode_open_session_ack(view).server_session;
    case net::FrameType::kChunk: {
      const net::ChunkView chunk = net::decode_chunk(view);
      std::uint64_t sum = checksum(chunk.samples);
      for (std::uint32_t c = 0; c < chunk.channel_count; ++c) {
        sum += checksum(chunk.channel(c));
      }
      return sum;
    }
    case net::FrameType::kLabelAck: {
      const net::LabelAckPayload ack = net::decode_label_ack(view);
      return static_cast<std::uint64_t>(ack.onset_s < ack.offset_s);
    }
    case net::FrameType::kDetections:
      return checksum(net::decode_detections(view));
    case net::FrameType::kStats:
      return net::decode_stats(view).windows_classified;
    case net::FrameType::kSwapModel: {
      const std::string_view key = net::decode_swap_model(view);
      return checksum(std::span<const char>(key.data(), key.size()));
    }
    case net::FrameType::kError: {
      const net::ErrorView error = net::decode_error(view);
      return checksum(std::span<const char>(error.message.data(),
                                            error.message.size())) +
             static_cast<std::uint64_t>(error.code);
    }
    default:
      return 0;  // empty-payload types: nothing to decode
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // FrameBuffer owns its (aligned) storage, but replicate the staging
  // discipline anyway so direct parse_frame on the whole blob is legal.
  std::vector<Real> storage(size / sizeof(Real) + 1);
  std::memcpy(storage.data(), data, size);
  const std::span<const std::byte> bytes =
      std::as_bytes(std::span<const Real>(storage)).first(size);

  // One-shot parse of the blob front, as a fuzzable unit of its own.
  try {
    decode_payload(net::parse_frame(bytes));
  } catch (const esl::Error&) {
    // Malformed input correctly rejected at the boundary.
  }

  // Streamed replay: split the blob in two appends (the first byte
  // steers the split point) so reassembly and compaction run too.
  net::FrameBuffer buffer;
  const std::size_t split = size == 0 ? 0 : (data[0] * 37) % (size + 1);
  std::uint64_t sink = 0;
  try {
    buffer.append(bytes.first(split));
    net::FrameView view;
    while (buffer.next(view)) {
      sink += decode_payload(view);
    }
    buffer.append(bytes.subspan(split));
    while (buffer.next(view)) {
      sink += decode_payload(view);
    }
  } catch (const esl::Error&) {
    // Poisoned stream correctly rejected; no resynchronization.
  }
  return static_cast<int>(sink & 0);
}

// Seed-corpus generator for the fuzz harnesses.
//
// Usage: gen_corpus <fuzz-dir>
//
// Writes deterministic seeds under <fuzz-dir>/corpus/{artifact,ingest}
// and the permanent crash regressions under
// <fuzz-dir>/regressions/{artifact,ingest}. The outputs are checked in:
// CI replays them on every build (standalone driver or libFuzzer
// -runs=0) and uses the corpus dirs as the fuzz smoke starting
// population. Regenerate after a format change and commit the result.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "ml/artifact.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "net/wire.hpp"

namespace {

using esl::Real;
using esl::RealVector;
namespace ml = esl::ml;
namespace fs = std::filesystem;

void write_bytes(const fs::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "gen_corpus: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
}

std::vector<char> artifact_bytes(bool baked_scaler) {
  // Tiny dataset on purpose: the seeds are checked in, and libFuzzer
  // mutates faster over small inputs; real-size artifacts are covered by
  // the unit suites.
  esl::Rng rng(baked_scaler ? 17 : 7);
  ml::Dataset data;
  for (std::size_t i = 0; i < 24; ++i) {
    RealVector row;
    for (std::size_t f = 0; f < 4; ++f) {
      row.push_back(std::round(rng.normal() * 4.0) / 4.0);
    }
    data.push_back(row, rng.uniform_index(2) == 0 ? 0 : 1);
  }
  ml::RandomForest forest;
  forest.fit(data, 5);

  const fs::path tmp = fs::temp_directory_path() / "esl_gen_corpus.eslm";
  if (baked_scaler) {
    ml::RowScaler scaler;
    for (std::size_t f = 0; f < data.feature_count(); ++f) {
      scaler.mean.push_back(0.1 * static_cast<Real>(f));
      scaler.stddev.push_back(1.0 + 0.05 * static_cast<Real>(f));
    }
    ml::save_artifact(tmp.string(), ml::CompiledForest(forest, scaler));
  } else {
    ml::save_artifact(tmp.string(), ml::CompiledForest(forest));
  }
  std::ifstream in(tmp, std::ios::binary);
  std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  fs::remove(tmp);
  return bytes;
}

void poke_u32(std::vector<char>& bytes, std::size_t offset,
              std::uint32_t value) {
  std::memcpy(bytes.data() + offset, &value, sizeof(value));
}

ml::ArtifactHeader header_of(const std::vector<char>& bytes) {
  ml::ArtifactHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  return header;
}

/// The raw config prologue fuzz_ingest.cpp reads; layout kept in sync by
/// hand (it is a fuzzer input format, not an ABI).
struct RawConfig {
  double sample_rate_hz;
  double window_seconds;
  double overlap;
  double history_seconds;
  std::uint32_t alarm_consecutive;
  std::uint8_t use_fleet_model;
  std::uint8_t channels;
  std::uint16_t flags;
};

std::vector<char> ingest_bytes(const RawConfig& raw,
                               std::size_t samples, bool nan_payload) {
  std::vector<char> bytes(sizeof(raw) + samples * sizeof(Real));
  std::memcpy(bytes.data(), &raw, sizeof(raw));
  for (std::size_t i = 0; i < samples; ++i) {
    const Real value =
        nan_payload && i % 5 == 0
            ? std::numeric_limits<Real>::quiet_NaN()
            : static_cast<Real>(std::sin(0.37 * static_cast<double>(i)));
    std::memcpy(bytes.data() + sizeof(raw) + i * sizeof(Real), &value,
                sizeof(value));
  }
  return bytes;
}

std::vector<char> as_chars(const std::vector<std::byte>& bytes) {
  std::vector<char> out(bytes.size());
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

/// A representative client->server conversation, framed with the real
/// encoders so the seeds stay in sync with the wire format.
std::vector<std::byte> frame_conversation() {
  namespace net = esl::net;
  std::vector<std::byte> stream;
  net::encode_hello(stream, 1, net::HelloPayload{0x65676C617373ull});
  esl::engine::SessionConfig config;
  net::encode_open_session(stream, 7, 2, net::make_open_session(42, config));
  std::vector<Real> ch0(64), ch1(64);
  for (std::size_t i = 0; i < ch0.size(); ++i) {
    ch0[i] = std::sin(0.37 * static_cast<double>(i));
    ch1[i] = std::cos(0.11 * static_cast<double>(i));
  }
  net::encode_chunk(stream, 7, 3,
                    {std::span<const Real>(ch0), std::span<const Real>(ch1)});
  net::encode_label(stream, 7, 4);
  net::encode_swap_model(stream, 7, 5, "patient-4");
  net::encode_stats_request(stream, 6);
  net::encode_flush(stream, 7);
  net::encode_close(stream, 8);
  return stream;
}

/// The server->client direction: acks, pushed detections, stats, error.
std::vector<std::byte> frame_replies() {
  namespace net = esl::net;
  std::vector<std::byte> stream;
  net::encode_hello_ack(stream, 1,
                        net::HelloAckPayload{0x65676C617373ull, 4,
                                             net::k_hello_flag_registry});
  net::encode_open_session_ack(stream, 7, 2, net::OpenSessionAckPayload{9});
  net::WireDetection detections[2];
  detections[0].session_id = 7;
  detections[0].window_index = 3;
  detections[0].window_start_s = 3.0;
  detections[0].label = 1;
  detections[0].alarm = 1;
  detections[1].session_id = 7;
  detections[1].window_index = 4;
  detections[1].window_start_s = 4.0;
  detections[1].screened_out = 1;
  net::encode_detections(stream, 0, detections);
  net::encode_label_ack(stream, 7, 4, net::LabelAckPayload{10.0, 22.0});
  net::encode_swap_model_ack(stream, 7, 5);
  net::StatsPayload stats;
  stats.windows_classified = 100;
  stats.forest_windows = 60;
  net::encode_stats(stream, 6, stats);
  net::encode_flush_ack(stream, 7);
  net::encode_error(stream, 9, net::WireErrorCode::kDataError,
                    "registry has no artifact for key");
  net::encode_close_ack(stream, 8);
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: gen_corpus <fuzz-dir>\n");
    return 1;
  }
  const fs::path root(argv[1]);
  for (const char* dir : {"corpus/artifact", "corpus/ingest", "corpus/frame",
                          "regressions/artifact", "regressions/ingest",
                          "regressions/frame"}) {
    fs::create_directories(root / dir);
  }

  // ------------------------------------------------------- artifact seeds
  const std::vector<char> plain = artifact_bytes(false);
  const std::vector<char> scaled = artifact_bytes(true);
  write_bytes(root / "corpus/artifact/valid.eslm", plain);
  write_bytes(root / "corpus/artifact/valid_scaler.eslm", scaled);
  write_bytes(root / "corpus/artifact/truncated.bin",
              {plain.begin(), plain.begin() + static_cast<long>(
                                  plain.size() / 2)});
  {
    std::vector<char> bad = plain;
    bad[8] += 1;  // version
    write_bytes(root / "corpus/artifact/bad_version.bin", bad);
  }

  // Permanent regressions: the hostile-payload blobs that slipped past
  // header-only validation before validate_payload() existed (OOB reads
  // through left/right/tree_root/feature during traversal).
  const ml::ArtifactHeader header = header_of(plain);
  const ml::ArtifactLayout layout = ml::artifact_layout(
      header.node_count, header.tree_count, header.scaler_width);
  {
    std::vector<char> hostile = plain;
    poke_u32(hostile, layout.left,
             static_cast<std::uint32_t>(header.node_count));
    write_bytes(root / "regressions/artifact/oob_left_child.bin", hostile);
  }
  {
    std::vector<char> hostile = plain;
    poke_u32(hostile, layout.tree_root, ~std::uint32_t{0});
    write_bytes(root / "regressions/artifact/oob_tree_root.bin", hostile);
  }
  {
    std::vector<char> hostile = plain;
    poke_u32(hostile, layout.feature, header.max_feature + 1);
    write_bytes(root / "regressions/artifact/oob_feature_id.bin", hostile);
  }

  // --------------------------------------------------------- ingest seeds
  RawConfig wearable{256.0, 4.0, 0.75, 0.0, 3, 1, 2, 0};
  write_bytes(root / "corpus/ingest/wearable_stream.bin",
              ingest_bytes(wearable, 4096, false));
  RawConfig with_history = wearable;
  with_history.history_seconds = 8.0;
  with_history.flags = 1;
  write_bytes(root / "corpus/ingest/history_nan_stream.bin",
              ingest_bytes(with_history, 2048, true));
  RawConfig tiny{8.0, 0.5, 0.5, 0.0, 1, 0, 1, 15};
  write_bytes(root / "corpus/ingest/tiny_windows.bin",
              ingest_bytes(tiny, 512, false));

  // Permanent regression: finite-but-absurd geometry that used to reach
  // lround() overflow and a colossal ring allocation before validate()
  // gained plausibility bounds.
  RawConfig absurd{1e30, 4.0, 0.75, 1e20, 3, 1, 2, 0};
  write_bytes(root / "regressions/ingest/unbounded_geometry.bin",
              ingest_bytes(absurd, 64, false));

  // ---------------------------------------------------------- frame seeds
  // Both wire directions, framed by the real encoders: every frame type
  // appears at least once, so libFuzzer starts with full type coverage.
  const std::vector<char> conversation = as_chars(frame_conversation());
  const std::vector<char> replies = as_chars(frame_replies());
  write_bytes(root / "corpus/frame/client_conversation.bin", conversation);
  write_bytes(root / "corpus/frame/server_replies.bin", replies);
  write_bytes(root / "corpus/frame/truncated_stream.bin",
              {conversation.begin(),
               conversation.begin() +
                   static_cast<long>(conversation.size() / 2)});
  {
    std::vector<char> bad = conversation;
    bad[0] ^= 0x01;  // magic
    write_bytes(root / "corpus/frame/bad_magic.bin", bad);
  }
  {
    std::vector<char> bad = conversation;
    bad[8] += 1;  // version (u32 right after the magic)
    write_bytes(root / "corpus/frame/bad_version.bin", bad);
  }

  // Permanent regressions: well-formed headers over hostile payloads —
  // the cases the typed decoders (not validate()) must stop.
  {
    // Chunk whose declared geometry multiplies past the payload (and,
    // at 0xFFFF x 0xFFFF, past 32 bits).
    std::vector<std::byte> stream;
    std::vector<Real> samples(8, 1.0);
    esl::net::encode_chunk(stream, 1, 1, {std::span<const Real>(samples)});
    std::vector<char> hostile = as_chars(stream);
    poke_u32(hostile, sizeof(esl::net::FrameHeader), 0xFFFFu);
    poke_u32(hostile, sizeof(esl::net::FrameHeader) + 4, 0xFFFFu);
    write_bytes(root / "regressions/frame/chunk_geometry_overflow.bin",
                hostile);
  }
  {
    // Registry key smuggling a path separator past the length checks.
    std::vector<std::byte> stream;
    esl::net::encode_swap_model(stream, 1, 1, "aa.bbbb");
    std::vector<char> hostile = as_chars(stream);
    const std::size_t key_at =
        sizeof(esl::net::FrameHeader) + sizeof(esl::net::SwapModelPayload);
    hostile[key_at + 2] = '/';
    write_bytes(root / "regressions/frame/key_path_traversal.bin", hostile);
  }
  {
    // Detections batch declaring one more entry than the payload holds.
    std::vector<std::byte> stream;
    esl::net::WireDetection one;
    one.session_id = 7;
    esl::net::encode_detections(stream, 0, {&one, 1});
    std::vector<char> hostile = as_chars(stream);
    poke_u32(hostile, sizeof(esl::net::FrameHeader), 2);
    write_bytes(root / "regressions/frame/detections_count_overrun.bin",
                hostile);
  }
  return 0;
}

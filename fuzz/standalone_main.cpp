// Replay driver for toolchains without libFuzzer (GCC, plain CI).
//
// Links against the same LLVMFuzzerTestOneInput a Clang build hands to
// libFuzzer, and replays every file (or every regular file inside every
// directory) named on the command line. libFuzzer-style flags
// ("-runs=0", "-max_len=...") are ignored, so the exact ctest command
// line works for both flavors of the binary. Exit is non-zero when any
// input could not be read; a harness failure is a crash, as in fuzzing.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "standalone: cannot read %s\n", path.c_str());
    return false;
  }
  const std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>()};
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t replayed = 0;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') {
      continue;  // libFuzzer flag; harmless here
    }
    const std::filesystem::path path(arg);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) {
          ok = replay_file(entry.path()) && ok;
          ++replayed;
        }
      }
    } else if (std::filesystem::exists(path)) {
      ok = replay_file(path) && ok;
      ++replayed;
    } else {
      std::fprintf(stderr, "standalone: no such input %s\n", path.c_str());
      ok = false;
    }
  }
  std::printf("standalone: replayed %zu inputs\n", replayed);
  return ok ? 0 : 1;
}

// Fuzz harness for the artifact trust boundary (ml/artifact.hpp).
//
// An artifact file crosses the training->serving process boundary, so
// its bytes are input, not state. This harness drives the single
// parsing seam — bind_artifact() — on arbitrary blobs: every input must
// either be rejected with an esl::Error (InvalidArgument/DataError) or
// yield a view that both traversal backends can serve predictions from
// without leaving the blob. Any other outcome (signal, sanitizer
// report, unhandled exception) is a finding.
//
// Build: -DESL_FUZZ=ON. Under Clang this links libFuzzer
// (-fsanitize=fuzzer); elsewhere fuzz/standalone_main.cpp replays
// corpus files so the checked-in corpus doubles as a regression suite
// on every toolchain.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "ml/artifact.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/inference_model.hpp"

namespace {

using esl::Matrix;
using esl::Real;
using esl::RealVector;

// Traversal cost on an *accepted* blob is O(rows * sum(tree_depth));
// hostile-but-valid headers can declare geometries whose single
// traversal would dominate the fuzz budget, so predictions only run on
// modestly sized forests (binding + validation always runs on all).
constexpr std::uint64_t k_predict_node_limit = 4096;
constexpr std::uint32_t k_predict_feature_limit = 1024;

void predict_both_backends(const esl::ml::ArtifactView& view) {
  const std::size_t cols = static_cast<std::size_t>(view.forest.max_feature) + 1;
  Matrix rows;
  RealVector row(cols);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t f = 0; f < cols; ++f) {
      // Deterministic, sign-varied values spanning typical thresholds.
      row[f] = static_cast<Real>(static_cast<int>((r * 31 + f * 7) % 13) - 6);
    }
    rows.append_row(row);
  }
  esl::ml::scale_rows(view.scaler_mean, view.scaler_stddev, rows);

  RealVector proba;
  std::vector<int> labels;
  esl::ml::predict_flat_compiled(view.forest, rows, proba, labels);
  esl::ml::predict_flat_simd(view.forest, rows, proba, labels);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // bind_artifact requires alignof(Real) alignment (an mmap base is
  // page-aligned); libFuzzer blobs are not, so stage through Real
  // storage the way a wire-protocol receive buffer would.
  std::vector<Real> storage(size / sizeof(Real) + 1);
  std::memcpy(storage.data(), data, size);
  const std::span<const std::byte> bytes =
      std::as_bytes(std::span<const Real>(storage)).first(size);

  try {
    const esl::ml::ArtifactView view = esl::ml::bind_artifact(bytes);
    if (view.header.node_count <= k_predict_node_limit &&
        view.header.max_feature < k_predict_feature_limit) {
      predict_both_backends(view);
    }
  } catch (const esl::Error&) {
    // Malformed input correctly rejected at the boundary.
  }
  return 0;
}

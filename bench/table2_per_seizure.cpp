// Reproduces TABLE II — mean delta (Eq. 1, seconds) for each of the 45
// seizures (§VI-A), including the three artifact-confounded outliers
// (patients 2/3/4: 373 / 443 / 408 s in the paper).
#include <vector>

#include "bench_util.hpp"
#include "core/evaluation.hpp"

namespace {

// Paper Table II rows, 0 = no entry.
const std::vector<std::vector<double>> k_paper = {
    {15, 19, 12, 7, 13, 16, 21}, {19, 373, 53},       {443, 4, 6, 3, 14, 3, 8},
    {408, 21, 6, 11},            {3, 6, 10, 6, 3},    {12, 7, 17},
    {12, 4, 32, 14, 40},         {3, 5, 2, 4},        {15, 3, 2, 3, 6, 13, 5},
};

}  // namespace

int main() {
  using namespace esl;
  bench::print_header(
      "TABLE II: mean delta (s) per seizure — paper value / measured value");

  const sim::CohortSimulator simulator;
  core::LabelingEvaluationConfig config;
  config.samples_per_seizure = bench::samples_per_seizure();
  std::fprintf(stderr, "samples per seizure: %zu (REPRO_SAMPLES to change)\n",
               config.samples_per_seizure);

  const core::CohortLabelingResult result =
      core::evaluate_labeling(simulator, config, bench::progress_meter);

  std::printf("%-8s | seizure number (paper -> measured)\n", "Patient");
  std::printf("---------+----------------------------------------------------\n");
  std::size_t outliers = 0;
  for (std::size_t p = 0; p < result.patients.size(); ++p) {
    std::printf("%-8d |", result.patients[p].patient_id);
    const auto& seizures = result.patients[p].seizures;
    for (std::size_t s = 0; s < seizures.size(); ++s) {
      std::printf(" %.0f->%.0f", k_paper[p][s], seizures[s].mean_delta_s);
      if (seizures[s].mean_delta_s > 120.0) {
        ++outliers;
      }
    }
    std::printf("\n");
  }
  std::printf("\nshape checks:\n");
  std::printf("  gross outliers (> 2 min): %zu (paper: 3, on patients 2/3/4)\n",
              outliers);
  for (const auto& patient : result.patients) {
    for (const auto& seizure : patient.seizures) {
      if (seizure.mean_delta_s > 120.0) {
        std::printf("    patient %d seizure %zu: %.0f s (artifact-confounded)\n",
                    patient.patient_id, seizure.event.seizure_index + 1,
                    seizure.mean_delta_s);
      }
    }
  }
  return 0;
}

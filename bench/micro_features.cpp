// Microbenchmarks of the feature extraction pipeline: per-window cost of
// the 10-feature (labeling) and 54x2-feature (real-time classifier) sets,
// and whole-record throughput.
//
// Two modes:
//  * default: Google Benchmark suite, including allocating-vs-workspace
//    pairs for both extractors;
//  * --json PATH: self-timed before/after comparison — windows/sec and
//    allocs/window for the allocating and the workspace-threaded
//    extract_into paths (BENCH_features.json in CI).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "alloc_compare.hpp"
#include "dsp/workspace.hpp"
#include "features/eglass_features.hpp"
#include "features/extractor.hpp"
#include "features/paper_features.hpp"
#include "sim/cohort.hpp"

ESL_DEFINE_COUNTING_ALLOCATOR();

namespace {

using namespace esl;

const sim::CohortSimulator& simulator() {
  static const sim::CohortSimulator instance;
  return instance;
}

void bm_paper_features_window(benchmark::State& state) {
  const auto record = simulator().synthesize_background_record(0, 8.0, 1);
  const features::PaperFeatureExtractor extractor;
  const std::vector<std::span<const Real>> window = {
      std::span<const Real>(record.channel(0).samples).subspan(0, 1024),
      std::span<const Real>(record.channel(1).samples).subspan(0, 1024)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(window, 256.0));
  }
}
BENCHMARK(bm_paper_features_window);

void bm_paper_features_window_workspace(benchmark::State& state) {
  const auto record = simulator().synthesize_background_record(0, 8.0, 1);
  const features::PaperFeatureExtractor extractor;
  const std::vector<std::span<const Real>> window = {
      std::span<const Real>(record.channel(0).samples).subspan(0, 1024),
      std::span<const Real>(record.channel(1).samples).subspan(0, 1024)};
  dsp::Workspace ws;
  RealVector row;
  for (auto _ : state) {
    extractor.extract_into(window, 256.0, row, ws);
    benchmark::DoNotOptimize(row.data());
  }
}
BENCHMARK(bm_paper_features_window_workspace);

void bm_eglass_features_window(benchmark::State& state) {
  const auto record = simulator().synthesize_background_record(0, 8.0, 2);
  const features::EglassFeatureExtractor extractor(2);
  const std::vector<std::span<const Real>> window = {
      std::span<const Real>(record.channel(0).samples).subspan(0, 1024),
      std::span<const Real>(record.channel(1).samples).subspan(0, 1024)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(window, 256.0));
  }
}
BENCHMARK(bm_eglass_features_window);

void bm_eglass_features_window_workspace(benchmark::State& state) {
  const auto record = simulator().synthesize_background_record(0, 8.0, 2);
  const features::EglassFeatureExtractor extractor(2);
  const std::vector<std::span<const Real>> window = {
      std::span<const Real>(record.channel(0).samples).subspan(0, 1024),
      std::span<const Real>(record.channel(1).samples).subspan(0, 1024)};
  dsp::Workspace ws;
  RealVector row;
  for (auto _ : state) {
    extractor.extract_into(window, 256.0, row, ws);
    benchmark::DoNotOptimize(row.data());
  }
}
BENCHMARK(bm_eglass_features_window_workspace);

void bm_paper_features_per_minute_of_record(benchmark::State& state) {
  const auto record = simulator().synthesize_background_record(1, 60.0, 3);
  const features::PaperFeatureExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        features::extract_windowed_features(record, extractor));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 57);
}
BENCHMARK(bm_paper_features_per_minute_of_record)->Unit(benchmark::kMillisecond);

void bm_record_synthesis_per_minute(benchmark::State& state) {
  std::uint64_t label = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulator().synthesize_background_record(2, 60.0, label++));
  }
}
BENCHMARK(bm_record_synthesis_per_minute)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------- --json
// Harness + JSON schema shared with micro_dsp (alloc_compare.hpp).

using bench::Comparison;
using bench::measure;

int run_json_mode(const std::string& path) {
  const auto record = simulator().synthesize_background_record(0, 8.0, 2);
  const std::vector<std::span<const Real>> window = {
      std::span<const Real>(record.channel(0).samples).subspan(0, 1024),
      std::span<const Real>(record.channel(1).samples).subspan(0, 1024)};
  const features::EglassFeatureExtractor eglass(2);
  const features::PaperFeatureExtractor paper;
  dsp::Workspace ws;
  RealVector row;
  std::vector<Comparison> comparisons;

  comparisons.push_back(
      {"eglass_window_1024",
       measure([&] { benchmark::DoNotOptimize(eglass.extract(window, 256.0)); },
               2000),
       measure(
           [&] {
             eglass.extract_into(window, 256.0, row, ws);
             benchmark::DoNotOptimize(row.data());
           },
           2000)});
  comparisons.push_back(
      {"paper_window_1024",
       measure([&] { benchmark::DoNotOptimize(paper.extract(window, 256.0)); },
               2000),
       measure(
           [&] {
             paper.extract_into(window, 256.0, row, ws);
             benchmark::DoNotOptimize(row.data());
           },
           2000)});

  bench::print_comparison_table("extractor", comparisons);
  return bench::write_comparison_json(path, "micro_features", comparisons);
}

}  // namespace

int main(int argc, char** argv) {
  return esl::bench::benchmark_main_with_json(argc, argv, run_json_mode);
}

// Microbenchmarks of the feature extraction pipeline: per-window cost of
// the 10-feature (labeling) and 54x2-feature (real-time classifier) sets,
// and whole-record throughput.
#include <benchmark/benchmark.h>

#include "features/eglass_features.hpp"
#include "features/extractor.hpp"
#include "features/paper_features.hpp"
#include "sim/cohort.hpp"

namespace {

using namespace esl;

const sim::CohortSimulator& simulator() {
  static const sim::CohortSimulator instance;
  return instance;
}

void bm_paper_features_window(benchmark::State& state) {
  const auto record = simulator().synthesize_background_record(0, 8.0, 1);
  const features::PaperFeatureExtractor extractor;
  const std::vector<std::span<const Real>> window = {
      std::span<const Real>(record.channel(0).samples).subspan(0, 1024),
      std::span<const Real>(record.channel(1).samples).subspan(0, 1024)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(window, 256.0));
  }
}
BENCHMARK(bm_paper_features_window);

void bm_eglass_features_window(benchmark::State& state) {
  const auto record = simulator().synthesize_background_record(0, 8.0, 2);
  const features::EglassFeatureExtractor extractor(2);
  const std::vector<std::span<const Real>> window = {
      std::span<const Real>(record.channel(0).samples).subspan(0, 1024),
      std::span<const Real>(record.channel(1).samples).subspan(0, 1024)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(window, 256.0));
  }
}
BENCHMARK(bm_eglass_features_window);

void bm_paper_features_per_minute_of_record(benchmark::State& state) {
  const auto record = simulator().synthesize_background_record(1, 60.0, 3);
  const features::PaperFeatureExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        features::extract_windowed_features(record, extractor));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 57);
}
BENCHMARK(bm_paper_features_per_minute_of_record)->Unit(benchmark::kMillisecond);

void bm_record_synthesis_per_minute(benchmark::State& state) {
  std::uint64_t label = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulator().synthesize_background_record(2, 60.0, label++));
  }
}
BENCHMARK(bm_record_synthesis_per_minute)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Ablation: the "every fourth point" subsampling of Algorithm 1 (§IV).
//
// The paper argues that, given the 75 % window overlap, using every 4th
// outside point avoids redundant information and cuts complexity. This
// bench sweeps the stride and reports labeling deviation and wall time:
// the expected shape is flat accuracy from stride 1 to 4 and ~linear
// runtime savings.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/statistics.hpp"
#include "core/aposteriori.hpp"
#include "core/deviation_metric.hpp"
#include "features/paper_features.hpp"
#include "sim/cohort.hpp"

int main() {
  using namespace esl;
  using clock = std::chrono::steady_clock;
  bench::print_header(
      "ABLATION: outside-point stride of Algorithm 1 (paper uses 4)");

  const sim::CohortSimulator simulator;
  // Two clean patients, two samples per seizure, shortened records.
  const std::vector<std::size_t> patients = {4, 7};
  const std::size_t samples = 2;

  struct Case {
    const signal::EegRecord record;
    features::WindowedFeatures windowed;
    Seconds w;
  };
  std::vector<Case> cases;
  const features::PaperFeatureExtractor extractor;
  for (const std::size_t p : patients) {
    for (const auto& event : simulator.events_for_patient(p)) {
      for (std::size_t s = 0; s < samples; ++s) {
        Case item{simulator.synthesize_sample(event, s, 900.0, 1200.0),
                  {},
                  simulator.average_seizure_duration(p)};
        item.windowed = features::extract_windowed_features(item.record, extractor);
        cases.push_back(std::move(item));
      }
    }
  }
  std::fprintf(stderr, "prepared %zu labeling cases\n", cases.size());

  std::printf("%-8s %-16s %-16s %-14s\n", "stride", "mean delta (s)",
              "median delta (s)", "time (ms/case)");
  for (const std::size_t stride : {1u, 2u, 4u, 8u, 16u}) {
    core::APosterioriConfig config;
    config.outside_stride = stride;
    const core::APosterioriDetector detector(config);
    RealVector deltas;
    const auto start = clock::now();
    for (const auto& item : cases) {
      const signal::Interval label = detector.label(item.windowed, item.w);
      deltas.push_back(
          core::deviation_seconds(item.record.seizures().front(), label));
    }
    const auto elapsed =
        std::chrono::duration<double, std::milli>(clock::now() - start).count();
    std::printf("%-8zu %-16.2f %-16.2f %-14.3f\n", stride,
                stats::mean(deltas), stats::median(deltas),
                elapsed / static_cast<double>(cases.size()));
  }
  std::printf("\nexpected shape: accuracy flat through stride 4 (the paper's\n"
              "choice), runtime shrinking with stride; accuracy degrades only\n"
              "for very coarse strides.\n");
  return 0;
}

// Ablation: hierarchical (self-aware) detection — the paper's follow-up
// direction [24].
//
// Table III shows the supervised classifier at 75 % duty consuming 85.7 %
// of the energy. A cheap stage-1 screen (theta-power threshold) that
// wakes the forest only on suspicious windows cuts that duty; this bench
// measures the detection-quality cost and converts the stage-2 invocation
// rate into battery lifetime with the platform model.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/statistics.hpp"
#include "core/hierarchical.hpp"
#include "ml/metrics.hpp"
#include "platform/wearable.hpp"
#include "sim/cohort.hpp"

int main() {
  using namespace esl;
  bench::print_header(
      "ABLATION: hierarchical detection (stage-1 screen + forest) [24]");

  const sim::CohortSimulator simulator;
  const std::size_t patient = 4;  // patient 5
  const auto events = simulator.events_for_patient(patient);

  // Train on the first two seizures, test on the rest.
  ml::Dataset train;
  for (std::size_t e = 0; e < 2; ++e) {
    const auto record = simulator.synthesize_sample(events[e], e, 700.0, 900.0);
    train.append(core::build_window_dataset(record, record.seizures()));
  }
  std::vector<signal::EegRecord> test_records;
  for (std::size_t e = 2; e < events.size(); ++e) {
    test_records.push_back(
        simulator.synthesize_sample(events[e], 100 + e, 700.0, 900.0));
  }
  std::fprintf(stderr, "trained on 2 records, testing on %zu\n",
               test_records.size());

  const features::EglassFeatureExtractor extractor(2);
  const auto window_labels = [&](const signal::EegRecord& record) {
    const auto windowed = features::extract_windowed_features(record, extractor);
    std::vector<int> labels(windowed.count());
    const auto truth = record.seizures();
    for (std::size_t w = 0; w < windowed.count(); ++w) {
      const signal::Interval window{windowed.window_start_s[w],
                                    windowed.window_start_s[w] + 4.0};
      labels[w] = !truth.empty() && window.overlap(truth.front()) >= 2.0 ? 1 : 0;
    }
    return labels;
  };

  // Flat forest baseline.
  core::RealtimeDetector flat;
  flat.fit(train, 7);

  const platform::WearableConfig platform_config;
  std::printf("%-22s %-10s %-14s %-16s %-16s\n", "detector", "gmean",
              "stage2 (%)", "detect duty (%)", "lifetime (days)");

  // Baseline row: forest on every window = 75 % duty (paper).
  {
    ml::ConfusionMatrix total;
    for (const auto& record : test_records) {
      const auto truth = window_labels(record);
      const auto predicted = flat.predict_windows(record);
      const auto m = ml::confusion(truth, predicted);
      total.true_positive += m.true_positive;
      total.true_negative += m.true_negative;
      total.false_positive += m.false_positive;
      total.false_negative += m.false_negative;
    }
    platform::WearableConfig c = platform_config;
    c.detection_duty = 0.75;
    std::printf("%-22s %-10.3f %-14s %-16.1f %-16.2f\n", "flat forest (paper)",
                total.geometric_mean(), "100.0", 75.0,
                platform::lifetime_full_system(c, 1.0).lifetime_days());
  }

  for (const Real target : {0.999, 0.98, 0.90}) {
    core::HierarchicalConfig config;
    config.stage1_target_sensitivity = target;
    core::HierarchicalDetector detector(config);
    detector.fit(train, 7);

    ml::ConfusionMatrix total;
    RealVector stage2_fractions;
    for (const auto& record : test_records) {
      const auto truth = window_labels(record);
      const auto prediction = detector.predict(record);
      const auto m = ml::confusion(truth, prediction.labels);
      total.true_positive += m.true_positive;
      total.true_negative += m.true_negative;
      total.false_positive += m.false_positive;
      total.false_negative += m.false_negative;
      stage2_fractions.push_back(prediction.stage2_fraction());
    }
    const Real stage2 = stats::mean(stage2_fractions);
    // Duty model: stage 1 is a single band-power compare (~5 % of the
    // window budget); stage 2 costs the full 75 % share when invoked.
    const Real duty = 0.05 + stage2 * 0.75;
    platform::WearableConfig c = platform_config;
    c.detection_duty = duty;
    char name[64];
    std::snprintf(name, sizeof(name), "hierarchical s1=%.3f", target);
    std::printf("%-22s %-10.3f %-14.1f %-16.1f %-16.2f\n", name,
                total.geometric_mean(), 100.0 * stage2, 100.0 * duty,
                platform::lifetime_full_system(c, 1.0).lifetime_days());
  }

  std::printf("\nexpected shape: screening cuts the classifier duty by an\n"
              "order of magnitude at little gmean cost, stretching the\n"
              "2.59-day worst-case lifetime toward the acquisition-limited\n"
              "bound (~27 days) — the motivation for self-aware wearables\n"
              "[24].\n");
  return 0;
}

// Ablation: how many self-labeled seizures does the real-time detector
// need? (§VI-B uses "2 to 5 seizures", i.e. 5-30 minutes of personalized
// training data.)
//
// This is the quantitative heart of the self-learning story (Fig. 1):
// every missed seizure adds one labeled example, so the curve below shows
// how quickly the personalized detector matures. Run on the three
// 7-seizure patients so up to 5 training seizures still leave 2 held out.
#include <cstdio>

#include "bench_util.hpp"
#include "core/evaluation.hpp"

int main() {
  using namespace esl;
  bench::print_header(
      "ABLATION: training-set size (labeled seizures per patient, SVI-B)");

  const sim::CohortSimulator simulator;
  std::printf("%-20s %-18s %-18s %-14s\n", "training seizures",
              "gmean expert (%)", "gmean algorithm (%)", "degradation");
  for (const std::size_t train_count : {2u, 3u, 4u, 5u}) {
    core::ValidationConfig config;
    config.max_training_seizures = train_count;
    config.patients = {0, 2, 8};  // the 7-seizure patients (1, 3, 9)
    const core::ValidationResult result = core::validate_self_learning(
        simulator, config, [&](std::size_t done, std::size_t total) {
          std::fprintf(stderr, "\r  k=%zu patient %zu/%zu", train_count, done,
                       total);
          if (done == total) {
            std::fprintf(stderr, "\n");
          }
        });
    std::printf("%-20zu %-18.2f %-18.2f %+-14.2f\n", train_count,
                100.0 * result.overall_expert_gmean,
                100.0 * result.overall_algorithm_gmean,
                100.0 * result.gmean_degradation);
  }
  std::printf("\nexpected shape: performance rises (and the expert/algorithm\n"
              "gap narrows) with more labeled seizures — each missed seizure\n"
              "makes the detector more robust, the premise of Fig. 1.\n");
  return 0;
}

// Reproduces TABLE III — battery lifetime of the system for the worst case
// (one seizure per day) — plus the in-text §VI-C lifetime numbers and the
// memory-budget statements.
#include <cstdio>

#include "bench_util.hpp"
#include "platform/wearable.hpp"

namespace {

void print_report(const esl::platform::LifetimeReport& report) {
  std::printf("%-24s %-12s %-10s %-16s %-10s\n", "Task", "Current(mA)",
              "Duty(%)", "Avg current(mA)", "Energy(%)");
  for (const auto& row : report.rows) {
    std::printf("%-24s %-12.3f %-10.2f %-16.4f %-10.2f\n", row.name.c_str(),
                row.current_ma, 100.0 * row.duty_cycle,
                row.average_current_ma, 100.0 * row.energy_share);
  }
  std::printf("%-24s %.3f mA -> %.2f h = %.2f days\n", "TOTAL",
              report.total_average_current_ma, report.lifetime_hours,
              report.lifetime_days());
}

}  // namespace

int main() {
  using namespace esl;
  using namespace esl::platform;
  bench::print_header("TABLE III: battery lifetime, worst case (1 seizure/day)");

  const WearableConfig config;

  std::printf("paper rows: acquisition 0.870 mA @100%% (9.47%%), detection\n"
              "10.5 mA @75%% (85.72%%), labeling 10.5 mA @4.17%% (4.77%%),\n"
              "idle 0.018 mA @20.83%% (0.04%%); lifetime 2.59 days\n\n");
  print_report(lifetime_full_system(config, 1.0));

  std::printf("\nIn-text SVI-C numbers (paper -> measured):\n");
  std::printf("  labeling-only, 1 seizure/month: 631.46 h -> %.2f h\n",
              lifetime_labeling_only(config, 1.0 / 30.0).lifetime_hours);
  std::printf("  labeling-only, 1 seizure/day:   430.16 h -> %.2f h\n",
              lifetime_labeling_only(config, 1.0).lifetime_hours);
  std::printf("  detection-only:                 65.15 h (2.71 d) -> %.2f h (%.2f d)\n",
              lifetime_detection_only(config).lifetime_hours,
              lifetime_detection_only(config).lifetime_days());
  std::printf("  full system, 1 seizure/month:   2.71 d -> %.2f d\n",
              lifetime_full_system(config, 1.0 / 30.0).lifetime_days());
  std::printf("  full system, 1 seizure/day:     2.59 d -> %.2f d\n",
              lifetime_full_system(config, 1.0).lifetime_days());

  std::printf("\nSeizure-rate sweep (full system):\n");
  std::printf("  %-22s %-14s\n", "seizures/day", "lifetime (days)");
  for (const double rate : {1.0 / 30.0, 1.0 / 14.0, 1.0 / 7.0, 0.5, 1.0, 2.0, 4.0}) {
    std::printf("  %-22.3f %-14.3f\n", rate,
                lifetime_full_system(config, rate).lifetime_days());
  }

  std::printf("\nMemory budget (paper: 240 KB needed for one hour of data;\n"
              "platform: 48 KB RAM, 384 KB Flash):\n");
  std::printf("  raw hour of signal:      %.0f KB (exceeds RAM -> stored in Flash)\n",
              raw_signal_kb(config, 3600.0));
  std::printf("  feature rows (10 x f64): %.0f KB\n",
              feature_buffer_kb(3600.0, 10, 8));
  std::printf("  paper's stated budget:   %.0f KB -> fits Flash: %s\n",
              k_paper_hour_buffer_kb,
              hour_buffer_fits(config, k_paper_hour_buffer_kb) ? "yes" : "NO");
  return 0;
}

// Reproduces FIG. 4 — geometric mean of the real-time classifier per
// patient when trained on doctor-labeled versus algorithm-labeled data
// (§VI-B), plus the in-text overall numbers:
//   overall geometric mean: experts 94.95 %, algorithm 92.60 %
//   degradation: 2.35 % (sensitivity 2.43 %, specificity 2.26 %).
#include "bench_util.hpp"
#include "core/evaluation.hpp"

int main() {
  using namespace esl;
  bench::print_header(
      "FIG. 4: doctor-labeled vs algorithm-labeled training (per patient)");
  std::fprintf(stderr, "training the real-time classifier twice per patient...\n");

  const sim::CohortSimulator simulator;
  core::ValidationConfig config;
  const core::ValidationResult result = core::validate_self_learning(
      simulator, config, [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r  patient %zu/%zu", done, total);
        if (done == total) {
          std::fprintf(stderr, "\n");
        }
      });

  std::printf("%-4s %-8s %-8s | %-12s %-12s %-12s\n", "ID", "train", "test",
              "gmean expert", "gmean algo", "degradation");
  for (const auto& patient : result.patients) {
    std::printf("%-4d %-8zu %-8zu | %-12.2f %-12.2f %+-12.2f\n",
                patient.patient_id, patient.training_seizures,
                patient.test_seizures, 100.0 * patient.expert_gmean,
                100.0 * patient.algorithm_gmean,
                100.0 * (patient.expert_gmean - patient.algorithm_gmean));
  }
  std::printf("\n%-40s %-10s %-10s\n", "overall metric", "paper", "measured");
  std::printf("%-40s %-10s %-10.2f\n", "geometric mean, expert labels (%)",
              "94.95", 100.0 * result.overall_expert_gmean);
  std::printf("%-40s %-10s %-10.2f\n", "geometric mean, algorithm labels (%)",
              "92.60", 100.0 * result.overall_algorithm_gmean);
  std::printf("%-40s %-10s %-10.2f\n", "gmean degradation (%)", "2.35",
              100.0 * result.gmean_degradation);
  std::printf("%-40s %-10s %-10.2f\n", "sensitivity degradation (%)", "2.43",
              100.0 * result.sensitivity_degradation);
  std::printf("%-40s %-10s %-10.2f\n", "specificity degradation (%)", "2.26",
              100.0 * result.specificity_degradation);
  std::printf("\nclaim check: algorithm-labeled training within a few %% of "
              "expert-labeled -> %s\n",
              result.gmean_degradation < 0.10 ? "holds" : "VIOLATED");
  return 0;
}

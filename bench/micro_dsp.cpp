// Microbenchmarks of the DSP substrate on paper-sized inputs
// (4 s windows at 256 Hz = 1024 samples).
//
// Two modes:
//  * default: Google Benchmark suite, including allocating-vs-workspace
//    pairs for the hot transforms;
//  * --json PATH: self-timed before/after comparison of the allocating
//    and workspace-threaded paths — windows/sec and allocs/window for
//    each — written as machine-readable JSON (BENCH_dsp.json in CI) so
//    the zero-alloc trajectory can be tracked across commits.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "alloc_compare.hpp"
#include "common/random.hpp"
#include "common/simd.hpp"
#include "dsp/fft.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/wavelet.hpp"
#include "dsp/workspace.hpp"
#include "entropy/permutation_entropy.hpp"
#include "entropy/sample_entropy.hpp"

ESL_DEFINE_COUNTING_ALLOCATOR();

namespace {

using namespace esl;

RealVector random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RealVector v(n);
  for (auto& x : v) {
    x = rng.normal();
  }
  return v;
}

void bm_fft_1024(benchmark::State& state) {
  const RealVector x = random_signal(1024, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::rfft(x));
  }
}
BENCHMARK(bm_fft_1024);

void bm_fft_1024_workspace(benchmark::State& state) {
  const RealVector x = random_signal(1024, 1);
  dsp::Workspace ws;
  for (auto _ : state) {
    dsp::rfft_into(x, ws, ws.spectrum);
    benchmark::DoNotOptimize(ws.spectrum.data());
  }
}
BENCHMARK(bm_fft_1024_workspace);

void bm_fft_bluestein_1000(benchmark::State& state) {
  dsp::ComplexVector x(1000);
  Rng rng(2);
  for (auto& v : x) {
    v = dsp::Complex(rng.normal(), rng.normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(x));
  }
}
BENCHMARK(bm_fft_bluestein_1000);

void bm_fft_bluestein_1000_workspace(benchmark::State& state) {
  dsp::ComplexVector x(1000);
  Rng rng(2);
  for (auto& v : x) {
    v = dsp::Complex(rng.normal(), rng.normal());
  }
  dsp::Workspace ws;
  for (auto _ : state) {
    dsp::fft_into(x, ws, ws.spectrum);
    benchmark::DoNotOptimize(ws.spectrum.data());
  }
}
BENCHMARK(bm_fft_bluestein_1000_workspace);

void bm_periodogram_window(benchmark::State& state) {
  const RealVector x = random_signal(1024, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::periodogram(x, 256.0));
  }
}
BENCHMARK(bm_periodogram_window);

void bm_periodogram_window_workspace(benchmark::State& state) {
  const RealVector x = random_signal(1024, 3);
  dsp::Workspace ws;
  for (auto _ : state) {
    dsp::periodogram_into(x, 256.0, ws, ws.psd);
    benchmark::DoNotOptimize(ws.psd.density.data());
  }
}
BENCHMARK(bm_periodogram_window_workspace);

void bm_wavedec_db4_level7(benchmark::State& state) {
  const RealVector x = random_signal(1024, 4);
  const dsp::Wavelet db4 = dsp::Wavelet::daubechies(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::wavedec(x, db4, 7));
  }
}
BENCHMARK(bm_wavedec_db4_level7);

void bm_wavedec_db4_level7_workspace(benchmark::State& state) {
  const RealVector x = random_signal(1024, 4);
  const dsp::Wavelet db4 = dsp::Wavelet::daubechies(4);
  dsp::Workspace ws;
  for (auto _ : state) {
    dsp::wavedec_into(x, db4, 7, ws, ws.decomposition);
    benchmark::DoNotOptimize(ws.decomposition.approx.data());
  }
}
BENCHMARK(bm_wavedec_db4_level7_workspace);

void bm_welch_one_minute(benchmark::State& state) {
  const RealVector x = random_signal(60 * 256, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::welch(x, 256.0, 1024));
  }
}
BENCHMARK(bm_welch_one_minute)->Unit(benchmark::kMillisecond);

void bm_welch_one_minute_workspace(benchmark::State& state) {
  const RealVector x = random_signal(60 * 256, 5);
  dsp::Workspace ws;
  for (auto _ : state) {
    dsp::welch_into(x, 256.0, 1024, ws, ws.psd);
    benchmark::DoNotOptimize(ws.psd.density.data());
  }
}
BENCHMARK(bm_welch_one_minute_workspace)->Unit(benchmark::kMillisecond);

void bm_permutation_entropy(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  // Paper geometry: PE runs on tiny DWT levels (8-16 coefficients).
  const RealVector x = random_signal(16, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(entropy::permutation_entropy(x, order));
  }
}
BENCHMARK(bm_permutation_entropy)->Arg(5)->Arg(7);

void bm_sample_entropy_level6(benchmark::State& state) {
  const RealVector x = random_signal(16, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(entropy::sample_entropy_relative(x, 2, 0.2));
  }
}
BENCHMARK(bm_sample_entropy_level6);

// --------------------------------------------------------------- --json
// Self-timed allocating-vs-workspace comparison (no Google Benchmark so
// the allocation counts are exactly the measured calls and nothing else).
// Harness + JSON schema shared with micro_features (alloc_compare.hpp).

using bench::Comparison;
using bench::measure;

int run_json_mode(const std::string& path) {
  const RealVector x1024 = random_signal(1024, 3);
  const RealVector x1000 = random_signal(1000, 8);
  const dsp::Wavelet db4 = dsp::Wavelet::daubechies(4);
  dsp::Workspace ws;
  std::vector<Comparison> comparisons;

  comparisons.push_back(
      {"periodogram_1024",
       measure([&] { benchmark::DoNotOptimize(dsp::periodogram(x1024, 256.0)); },
               20000),
       measure(
           [&] {
             dsp::periodogram_into(x1024, 256.0, ws, ws.psd);
             benchmark::DoNotOptimize(ws.psd.density.data());
           },
           20000)});
  comparisons.push_back(
      {"periodogram_bluestein_1000",
       measure([&] { benchmark::DoNotOptimize(dsp::periodogram(x1000, 256.0)); },
               5000),
       measure(
           [&] {
             dsp::periodogram_into(x1000, 256.0, ws, ws.psd);
             benchmark::DoNotOptimize(ws.psd.density.data());
           },
           5000)});
  comparisons.push_back(
      {"wavedec_db4_level7_1024",
       measure([&] { benchmark::DoNotOptimize(dsp::wavedec(x1024, db4, 7)); },
               20000),
       measure(
           [&] {
             dsp::wavedec_into(x1024, db4, 7, ws, ws.decomposition);
             benchmark::DoNotOptimize(ws.decomposition.approx.data());
           },
           20000)});
  comparisons.push_back(
      {"rfft_1024",
       measure([&] { benchmark::DoNotOptimize(dsp::rfft(x1024)); }, 50000),
       measure(
           [&] {
             dsp::rfft_into(x1024, ws, ws.spectrum);
             benchmark::DoNotOptimize(ws.spectrum.data());
           },
           50000)});

  // Scalar-vs-SIMD rows: the same workspace path measured twice, with
  // the kernels:: dispatch forced to scalar for "before" and back to the
  // host's widest level for "after" (outputs are bit-identical either
  // way — see the dsp.SimdParity suites — so this isolates pure kernel
  // speedup on the hot loops).
  const kernels::SimdLevel widest = kernels::detected_level();
  auto measure_at_level = [&](kernels::SimdLevel level, auto&& fn,
                              std::size_t iterations) {
    kernels::set_active_level(level);
    const bench::PathResult result = measure(fn, iterations);
    kernels::set_active_level(widest);
    return result;
  };
  auto periodogram_window = [&] {
    dsp::periodogram_into(x1024, 256.0, ws, ws.psd);
    benchmark::DoNotOptimize(ws.psd.density.data());
  };
  auto rfft_window = [&] {
    dsp::rfft_into(x1024, ws, ws.spectrum);
    benchmark::DoNotOptimize(ws.spectrum.data());
  };
  auto wavedec_window = [&] {
    dsp::wavedec_into(x1024, db4, 7, ws, ws.decomposition);
    benchmark::DoNotOptimize(ws.decomposition.approx.data());
  };
  comparisons.push_back(
      {"periodogram_1024_scalar_vs_simd",
       measure_at_level(kernels::SimdLevel::kScalar, periodogram_window, 20000),
       measure_at_level(widest, periodogram_window, 20000)});
  comparisons.push_back(
      {"rfft_1024_scalar_vs_simd",
       measure_at_level(kernels::SimdLevel::kScalar, rfft_window, 50000),
       measure_at_level(widest, rfft_window, 50000)});
  comparisons.push_back(
      {"wavedec_db4_level7_1024_scalar_vs_simd",
       measure_at_level(kernels::SimdLevel::kScalar, wavedec_window, 20000),
       measure_at_level(widest, wavedec_window, 20000)});

  std::printf("simd level: %s (detected %s)\n",
              kernels::level_name(kernels::active_level()),
              kernels::level_name(widest));
  bench::print_comparison_table("transform", comparisons);
  return bench::write_comparison_json(path, "micro_dsp", comparisons);
}

}  // namespace

int main(int argc, char** argv) {
  return esl::bench::benchmark_main_with_json(argc, argv, run_json_mode);
}

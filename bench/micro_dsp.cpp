// Microbenchmarks of the DSP substrate on paper-sized inputs
// (4 s windows at 256 Hz = 1024 samples).
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "dsp/fft.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/wavelet.hpp"
#include "entropy/permutation_entropy.hpp"
#include "entropy/sample_entropy.hpp"

namespace {

using namespace esl;

RealVector random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RealVector v(n);
  for (auto& x : v) {
    x = rng.normal();
  }
  return v;
}

void bm_fft_1024(benchmark::State& state) {
  const RealVector x = random_signal(1024, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::rfft(x));
  }
}
BENCHMARK(bm_fft_1024);

void bm_fft_bluestein_1000(benchmark::State& state) {
  dsp::ComplexVector x(1000);
  Rng rng(2);
  for (auto& v : x) {
    v = dsp::Complex(rng.normal(), rng.normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(x));
  }
}
BENCHMARK(bm_fft_bluestein_1000);

void bm_periodogram_window(benchmark::State& state) {
  const RealVector x = random_signal(1024, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::periodogram(x, 256.0));
  }
}
BENCHMARK(bm_periodogram_window);

void bm_wavedec_db4_level7(benchmark::State& state) {
  const RealVector x = random_signal(1024, 4);
  const dsp::Wavelet db4 = dsp::Wavelet::daubechies(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::wavedec(x, db4, 7));
  }
}
BENCHMARK(bm_wavedec_db4_level7);

void bm_welch_one_minute(benchmark::State& state) {
  const RealVector x = random_signal(60 * 256, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::welch(x, 256.0, 1024));
  }
}
BENCHMARK(bm_welch_one_minute)->Unit(benchmark::kMillisecond);

void bm_permutation_entropy(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  // Paper geometry: PE runs on tiny DWT levels (8-16 coefficients).
  const RealVector x = random_signal(16, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(entropy::permutation_entropy(x, order));
  }
}
BENCHMARK(bm_permutation_entropy)->Arg(5)->Arg(7);

void bm_sample_entropy_level6(benchmark::State& state) {
  const RealVector x = random_signal(16, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(entropy::sample_entropy_relative(x, 2, 0.2));
  }
}
BENCHMARK(bm_sample_entropy_level6);

}  // namespace

BENCHMARK_MAIN();

// Ablation: Algorithm 1 vs unsupervised clustering baselines.
//
// Smart & Chen [17] report k-means / k-medoids as the best unsupervised
// scalp-EEG detectors. We translate them to the a-posteriori localization
// task: cluster the normalized feature rows into k = 2, call the smaller
// cluster "seizure", and label the W-point window containing the most
// seizure-cluster members. Algorithm 1 should localize substantially
// better — that gap is the paper's motivation for a purpose-built
// distance scheme.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/statistics.hpp"
#include "core/aposteriori.hpp"
#include "core/deviation_metric.hpp"
#include "features/normalize.hpp"
#include "features/paper_features.hpp"
#include "ml/kmeans.hpp"
#include "sim/cohort.hpp"

namespace {

using namespace esl;

/// Localizes a W-window by maximizing seizure-cluster membership.
std::size_t densest_window(const std::vector<bool>& is_seizure_row,
                           std::size_t window) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < window && i < is_seizure_row.size(); ++i) {
    count += is_seizure_row[i] ? 1 : 0;
  }
  std::size_t best_index = 0;
  std::size_t best_count = count;
  for (std::size_t i = 1; i + window <= is_seizure_row.size(); ++i) {
    count -= is_seizure_row[i - 1] ? 1 : 0;
    count += is_seizure_row[i + window - 1] ? 1 : 0;
    if (count > best_count) {
      best_count = count;
      best_index = i;
    }
  }
  return best_index;
}

/// Clustering-based a-posteriori labeling (k-means or k-medoids).
signal::Interval cluster_label(const features::WindowedFeatures& windowed,
                               Seconds w_seconds, bool use_medoids, Rng& rng) {
  const Matrix z = features::zscore_normalized(windowed.features);
  const ml::Clustering clustering =
      use_medoids ? ml::kmedoids(z, 2, rng) : ml::kmeans(z, 2, rng);
  // The seizure cluster is the minority cluster.
  std::size_t members[2] = {0, 0};
  for (const std::size_t a : clustering.assignment) {
    ++members[a];
  }
  const std::size_t seizure_cluster = members[0] <= members[1] ? 0 : 1;
  std::vector<bool> is_seizure(clustering.assignment.size());
  for (std::size_t i = 0; i < is_seizure.size(); ++i) {
    is_seizure[i] = clustering.assignment[i] == seizure_cluster;
  }
  const auto window_points = static_cast<std::size_t>(
      std::max(1.0, w_seconds / windowed.hop_seconds));
  const std::size_t y = densest_window(is_seizure, window_points);
  const Seconds onset = windowed.index_to_seconds(y);
  return {onset, onset + w_seconds};
}

}  // namespace

int main() {
  bench::print_header(
      "ABLATION: Algorithm 1 vs k-means / k-medoids labeling [17]");

  const sim::CohortSimulator simulator;
  const std::vector<std::size_t> patients = {0, 4, 7};  // mixed difficulty
  const std::size_t samples = 2;

  RealVector delta_algorithm;
  RealVector delta_kmeans;
  RealVector delta_kmedoids;
  const features::PaperFeatureExtractor extractor;
  const core::APosterioriDetector detector;
  Rng rng(99);

  std::size_t done = 0;
  for (const std::size_t p : patients) {
    const Seconds w = simulator.average_seizure_duration(p);
    for (const auto& event : simulator.events_for_patient(p)) {
      for (std::size_t s = 0; s < samples; ++s) {
        const auto record = simulator.synthesize_sample(event, s, 900.0, 1200.0);
        const auto windowed = features::extract_windowed_features(record, extractor);
        const auto truth = record.seizures().front();

        delta_algorithm.push_back(
            core::deviation_seconds(truth, detector.label(windowed, w)));
        delta_kmeans.push_back(core::deviation_seconds(
            truth, cluster_label(windowed, w, /*use_medoids=*/false, rng)));
        delta_kmedoids.push_back(core::deviation_seconds(
            truth, cluster_label(windowed, w, /*use_medoids=*/true, rng)));
        std::fprintf(stderr, "\r  case %zu", ++done);
      }
    }
  }
  std::fprintf(stderr, "\n");

  const auto row = [](const char* name, const RealVector& deltas) {
    std::printf("%-22s %-16.2f %-16.2f %-16.2f\n", name,
                stats::mean(deltas), stats::median(deltas),
                stats::quantile(deltas, 0.9));
  };
  std::printf("%-22s %-16s %-16s %-16s\n", "method", "mean delta (s)",
              "median delta (s)", "p90 delta (s)");
  row("Algorithm 1", delta_algorithm);
  row("k-means  [17]", delta_kmeans);
  row("k-medoids [17]", delta_kmedoids);
  std::printf("\nexpected shape: Algorithm 1 wins on median and p90; the\n"
              "clustering baselines lose when background variance fragments\n"
              "the minority cluster.\n");
  return 0;
}

// Ablation: random forest [7, 28] vs linear SVM [14] as the real-time
// classifier.
//
// The paper adopts the e-Glass random forest; the classic alternative in
// the seizure-detection literature is the patient-specific SVM. Both are
// trained on the same algorithm-labeled windows and evaluated against
// expert labels — quantifying how much of the pipeline's performance
// comes from the classifier choice vs the self-labeling methodology.
#include <cstdio>

#include "bench_util.hpp"
#include "core/realtime_detector.hpp"
#include "features/normalize.hpp"
#include "ml/linear_svm.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "sim/cohort.hpp"

int main() {
  using namespace esl;
  bench::print_header(
      "ABLATION: random forest [7] vs linear SVM [14] as the classifier");

  const sim::CohortSimulator simulator;
  std::printf("%-4s | %-22s | %-22s\n", "ID", "forest sens/spec/gmean",
              "svm sens/spec/gmean");

  RealVector forest_gmeans;
  RealVector svm_gmeans;
  for (const std::size_t p : {0u, 2u, 4u, 8u}) {
    const auto events = simulator.events_for_patient(p);
    ml::Dataset train;
    for (std::size_t e = 0; e < 2; ++e) {
      const auto record = simulator.synthesize_sample(events[e], e, 700.0, 900.0);
      train.append(core::build_window_dataset(record, record.seizures()));
    }
    Rng rng(17 + p);
    const ml::Dataset balanced = ml::balance_classes(train, rng);
    const features::ColumnStats scaler = features::fit_column_stats(balanced.x);
    ml::Dataset scaled = balanced;
    features::apply_zscore(scaled.x, scaler);

    ml::RandomForest forest;
    forest.fit(scaled, 7);
    ml::LinearSvm svm;
    svm.fit(scaled, 7);

    ml::ConfusionMatrix forest_total;
    ml::ConfusionMatrix svm_total;
    for (std::size_t e = 2; e < events.size(); ++e) {
      const auto record =
          simulator.synthesize_sample(events[e], 100 + e, 700.0, 900.0);
      const ml::Dataset test =
          core::build_window_dataset(record, record.seizures());
      ml::Dataset test_scaled = test;
      features::apply_zscore(test_scaled.x, scaler);
      const auto tally = [&](ml::ConfusionMatrix& total,
                             const std::vector<int>& predicted) {
        const ml::ConfusionMatrix m = ml::confusion(test.y, predicted);
        total.true_positive += m.true_positive;
        total.true_negative += m.true_negative;
        total.false_positive += m.false_positive;
        total.false_negative += m.false_negative;
      };
      tally(forest_total, forest.predict_all(test_scaled.x));
      tally(svm_total, svm.predict_all(test_scaled.x));
    }
    std::printf("%-4zu | %.2f / %.2f / %-8.2f | %.2f / %.2f / %-8.2f\n",
                p + 1, forest_total.sensitivity(), forest_total.specificity(),
                forest_total.geometric_mean(), svm_total.sensitivity(),
                svm_total.specificity(), svm_total.geometric_mean());
    forest_gmeans.push_back(forest_total.geometric_mean());
    svm_gmeans.push_back(svm_total.geometric_mean());
  }

  Real forest_mean = 0.0;
  Real svm_mean = 0.0;
  for (std::size_t i = 0; i < forest_gmeans.size(); ++i) {
    forest_mean += forest_gmeans[i];
    svm_mean += svm_gmeans[i];
  }
  forest_mean /= static_cast<Real>(forest_gmeans.size());
  svm_mean /= static_cast<Real>(svm_gmeans.size());
  std::printf("\nmean gmean: forest %.3f, linear svm %.3f\n", forest_mean,
              svm_mean);
  std::printf("\nexpected shape: both classifiers are strong on personalized\n"
              "data; the forest holds an edge on specificity (nonlinear\n"
              "boundaries), supporting the paper's adoption of [7] while\n"
              "showing the methodology is not classifier-bound (SIII-C).\n");
  return 0;
}

// Shared allocating-vs-workspace comparison harness for the `--json`
// mode of the micro benches (micro_dsp, micro_features).
//
// Each bench measures pairs of closures — the allocating "before" path
// and the workspace-threaded "after" path — reporting windows/sec and
// allocs/window (via the counting operator new each bench binary defines
// with ESL_DEFINE_COUNTING_ALLOCATOR). Keeping the timing protocol and
// the JSON schema here means BENCH_dsp.json and BENCH_features.json can
// never silently diverge in format for cross-commit tracking consumers.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "../tests/support/alloc_counter.hpp"

namespace esl::bench {

struct PathResult {
  double windows_per_s = 0.0;
  double allocs_per_window = 0.0;
};

/// Times `fn` (one "window" of work per call) and its allocation rate,
/// after a fixed warm-up so caches, workspaces and the allocator itself
/// have reached steady state.
template <typename Fn>
PathResult measure(Fn&& fn, std::size_t iterations) {
  using Clock = std::chrono::steady_clock;
  for (std::size_t i = 0; i < 8; ++i) {
    fn();
  }
  const std::size_t allocs_before = esl::testing::allocation_count();
  const auto start = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    fn();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  const std::size_t allocs = esl::testing::allocation_count() - allocs_before;
  return {static_cast<double>(iterations) / elapsed,
          static_cast<double>(allocs) / static_cast<double>(iterations)};
}

struct Comparison {
  const char* name;
  PathResult before;  // allocating path
  PathResult after;   // workspace path
};

/// Human-readable before/after table on stdout.
inline void print_comparison_table(const char* label_header,
                                   const std::vector<Comparison>& comparisons) {
  std::printf("%-28s %14s %10s %14s %10s %8s\n", label_header, "before (w/s)",
              "allocs/w", "after (w/s)", "allocs/w", "speedup");
  for (const Comparison& c : comparisons) {
    std::printf("%-28s %14.0f %10.2f %14.0f %10.2f %7.2fx\n", c.name,
                c.before.windows_per_s, c.before.allocs_per_window,
                c.after.windows_per_s, c.after.allocs_per_window,
                c.after.windows_per_s / c.before.windows_per_s);
  }
}

/// Machine-readable comparison JSON (the BENCH_dsp/BENCH_features schema).
inline int write_comparison_json(const std::string& path,
                                 const char* bench_name,
                                 const std::vector<Comparison>& comparisons) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"comparisons\": [\n",
               bench_name);
  for (std::size_t i = 0; i < comparisons.size(); ++i) {
    const Comparison& c = comparisons[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"before_wps\": %.1f, "
        "\"before_allocs_per_window\": %.2f, \"after_wps\": %.1f, "
        "\"after_allocs_per_window\": %.2f, \"speedup\": %.3f}%s\n",
        c.name, c.before.windows_per_s, c.before.allocs_per_window,
        c.after.windows_per_s, c.after.allocs_per_window,
        c.after.windows_per_s / c.before.windows_per_s,
        i + 1 < comparisons.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

/// Extracts a `--json PATH` argument (if any) and strips it from the
/// argument list so Google Benchmark never sees it. Returns the filtered
/// arguments; `json_path` is left empty when the flag is absent.
inline std::vector<char*> strip_json_flag(int argc, char** argv,
                                          std::string& json_path) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  return args;
}

/// Shared main() for benches with a --json comparison mode: dispatches
/// `--json PATH` to `run_json(path)`, anything else to the registered
/// Google Benchmark suite.
template <typename JsonFn>
int benchmark_main_with_json(int argc, char** argv, JsonFn&& run_json) {
  std::string json_path;
  std::vector<char*> args = strip_json_flag(argc, argv, json_path);
  if (!json_path.empty()) {
    return run_json(json_path);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace esl::bench

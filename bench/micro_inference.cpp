// Microbenchmarks of forest inference: node-hopping interpreter
// (RandomForest::predict_all_into) vs the compiled flat traversal
// (ml::CompiledForest::predict_into) vs the explicit-SIMD pack traversal
// (ml::SimdForest::predict_into), across tree depth and batch size. All
// three produce bit-identical outputs (tests/ml/test_compiled_forest.cpp
// and tests/ml/test_simd_forest.cpp); this isolates the layout and
// vectorization wins. Build with -DESL_NATIVE=ON to also let the
// compiled path's inner loop auto-vectorize.
//
// Two modes:
//  * default: Google Benchmark suite;
//  * --json PATH: self-timed node-hop/compiled/simd matrix over
//    depth x batch, written as machine-readable JSON (BENCH_inference.json
//    in CI) so the inference trajectory can be tracked across commits.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "alloc_compare.hpp"
#include "common/random.hpp"
#include "common/simd.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "ml/simd_forest.hpp"

ESL_DEFINE_COUNTING_ALLOCATOR();

namespace {

using namespace esl;

constexpr std::size_t k_features = 54;  // e-Glass per-electrode width

ml::Dataset noisy_dataset(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  RealVector row(k_features);
  for (std::size_t i = 0; i < size; ++i) {
    for (auto& v : row) {
      v = rng.normal();
    }
    // Weakly informative labels grow deep, bushy trees.
    data.push_back(row, row[0] + 0.25 * rng.normal() > 0.0 ? 1 : 0);
  }
  return data;
}

ml::RandomForest fitted_forest(std::size_t max_depth) {
  ml::ForestConfig config;
  config.tree.max_depth = max_depth;
  ml::RandomForest forest(config);
  forest.fit(noisy_dataset(600, 7), 7);
  return forest;
}

Matrix probe_rows(std::size_t rows) {
  Rng rng(11);
  Matrix m(rows, k_features);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t f = 0; f < k_features; ++f) {
      m(r, f) = rng.normal();
    }
  }
  return m;
}

void bm_node_hop(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const ml::RandomForest forest = fitted_forest(depth);
  const Matrix rows = probe_rows(batch);
  RealVector proba;
  std::vector<int> labels;
  for (auto _ : state) {
    forest.predict_all_into(rows, proba, labels);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

void bm_flat(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const ml::RandomForest forest = fitted_forest(depth);
  const ml::CompiledForest compiled(forest);  // no scaler: same input rows
  Matrix rows = probe_rows(batch);
  RealVector proba;
  std::vector<int> labels;
  for (auto _ : state) {
    compiled.predict_into(rows, proba, labels);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

void bm_simd(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const ml::RandomForest forest = fitted_forest(depth);
  const ml::SimdForest simd(forest);  // no scaler: same input rows
  Matrix rows = probe_rows(batch);
  RealVector proba;
  std::vector<int> labels;
  for (auto _ : state) {
    simd.predict_into(rows, proba, labels);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

void depth_by_batch(benchmark::internal::Benchmark* bench) {
  for (const std::int64_t depth : {4, 8, 16}) {
    for (const std::int64_t batch : {1, 16, 64, 256, 1024}) {
      bench->Args({depth, batch});
    }
  }
}

BENCHMARK(bm_node_hop)->Apply(depth_by_batch);
BENCHMARK(bm_flat)->Apply(depth_by_batch);
BENCHMARK(bm_simd)->Apply(depth_by_batch);

// --------------------------------------------------------------- --json
// Self-timed node-hop vs compiled vs simd matrix (no Google Benchmark so
// the numbers come from the exact measured calls). Reuses the timing
// protocol of the dsp/features micro benches (alloc_compare.hpp).

using bench::measure;
using bench::PathResult;

struct InferenceCell {
  std::size_t depth;
  std::size_t batch;
  PathResult node_hop;
  PathResult compiled;
  PathResult simd;
};

int run_json_mode(const std::string& path) {
  std::vector<InferenceCell> cells;
  for (const std::size_t depth : {4u, 8u, 16u}) {
    const ml::RandomForest forest = fitted_forest(depth);
    const ml::CompiledForest compiled(forest);
    const ml::SimdForest simd(forest);
    for (const std::size_t batch : {1u, 16u, 64u, 256u, 1024u}) {
      Matrix rows = probe_rows(batch);
      RealVector proba;
      std::vector<int> labels;
      // Scale iteration counts so each cell costs roughly constant time.
      const std::size_t iterations = 20000 / batch + 50;
      InferenceCell cell{depth, batch, {}, {}, {}};
      cell.node_hop = measure(
          [&] {
            forest.predict_all_into(rows, proba, labels);
            benchmark::DoNotOptimize(labels.data());
          },
          iterations);
      cell.compiled = measure(
          [&] {
            compiled.predict_into(rows, proba, labels);
            benchmark::DoNotOptimize(labels.data());
          },
          iterations);
      cell.simd = measure(
          [&] {
            simd.predict_into(rows, proba, labels);
            benchmark::DoNotOptimize(labels.data());
          },
          iterations);
      cells.push_back(cell);
    }
  }

  // Columns are rows/sec (per-call rate times batch), matching the
  // *_rps fields in the JSON.
  std::printf("%-18s %14s %14s %14s %9s %9s\n", "depth x batch",
              "node-hop (r/s)", "compiled (r/s)", "simd (r/s)", "cmp/hop",
              "simd/cmp");
  for (const InferenceCell& c : cells) {
    std::printf("d%-2zu b%-13zu %14.0f %14.0f %14.0f %8.2fx %8.2fx\n", c.depth,
                c.batch, c.node_hop.windows_per_s * c.batch,
                c.compiled.windows_per_s * c.batch,
                c.simd.windows_per_s * c.batch,
                c.compiled.windows_per_s / c.node_hop.windows_per_s,
                c.simd.windows_per_s / c.compiled.windows_per_s);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"micro_inference\",\n  \"simd_level\": "
               "\"%s\",\n  \"results\": [\n",
               kernels::level_name(kernels::active_level()));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const InferenceCell& c = cells[i];
    // rows/sec: per-call rate times the batch each call classifies.
    std::fprintf(
        f,
        "    {\"depth\": %zu, \"batch\": %zu, \"node_hop_rps\": %.1f, "
        "\"compiled_rps\": %.1f, \"simd_rps\": %.1f, "
        "\"compiled_speedup\": %.3f, \"simd_speedup\": %.3f}%s\n",
        c.depth, c.batch, c.node_hop.windows_per_s * c.batch,
        c.compiled.windows_per_s * c.batch, c.simd.windows_per_s * c.batch,
        c.compiled.windows_per_s / c.node_hop.windows_per_s,
        c.simd.windows_per_s / c.compiled.windows_per_s, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return esl::bench::benchmark_main_with_json(argc, argv, run_json_mode);
}

// Microbenchmarks of forest inference (google-benchmark): node-hopping
// interpreter (RandomForest::predict_all_into) vs the compiled flat
// traversal (ml::CompiledForest::predict_into) across tree depth and
// batch size. The two produce bit-identical outputs (enforced by
// tests/ml/test_compiled_forest.cpp); this isolates the layout win.
// Build with -DESL_NATIVE=ON to let the flat inner loop vectorize.
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "ml/compiled_forest.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"

namespace {

using namespace esl;

constexpr std::size_t k_features = 54;  // e-Glass per-electrode width

ml::Dataset noisy_dataset(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  RealVector row(k_features);
  for (std::size_t i = 0; i < size; ++i) {
    for (auto& v : row) {
      v = rng.normal();
    }
    // Weakly informative labels grow deep, bushy trees.
    data.push_back(row, row[0] + 0.25 * rng.normal() > 0.0 ? 1 : 0);
  }
  return data;
}

ml::RandomForest fitted_forest(std::size_t max_depth) {
  ml::ForestConfig config;
  config.tree.max_depth = max_depth;
  ml::RandomForest forest(config);
  forest.fit(noisy_dataset(600, 7), 7);
  return forest;
}

Matrix probe_rows(std::size_t rows) {
  Rng rng(11);
  Matrix m(rows, k_features);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t f = 0; f < k_features; ++f) {
      m(r, f) = rng.normal();
    }
  }
  return m;
}

void bm_node_hop(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const ml::RandomForest forest = fitted_forest(depth);
  const Matrix rows = probe_rows(batch);
  RealVector proba;
  std::vector<int> labels;
  for (auto _ : state) {
    forest.predict_all_into(rows, proba, labels);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

void bm_flat(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const ml::RandomForest forest = fitted_forest(depth);
  const ml::CompiledForest compiled(forest);  // no scaler: same input rows
  Matrix rows = probe_rows(batch);
  RealVector proba;
  std::vector<int> labels;
  for (auto _ : state) {
    compiled.predict_into(rows, proba, labels);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

void depth_by_batch(benchmark::internal::Benchmark* bench) {
  for (const std::int64_t depth : {4, 8, 16}) {
    for (const std::int64_t batch : {1, 16, 64, 256, 1024}) {
      bench->Args({depth, batch});
    }
  }
}

BENCHMARK(bm_node_hop)->Apply(depth_by_batch);
BENCHMARK(bm_flat)->Apply(depth_by_batch);

}  // namespace

// Ablation: feature-count trade-off (§III-A).
//
// The paper sorted candidate features with backward elimination and kept
// the ten most relevant as "a proper trade-off between accuracy and
// complexity". This bench re-runs that analysis on the 10-feature set:
// backward elimination ranks the features by labeling accuracy, then the
// labeling deviation is reported for the top-k subsets.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/statistics.hpp"
#include "core/aposteriori.hpp"
#include "core/deviation_metric.hpp"
#include "features/paper_features.hpp"
#include "features/selection.hpp"
#include "sim/cohort.hpp"

namespace {

using namespace esl;

struct Case {
  signal::EegRecord record;
  features::WindowedFeatures windowed;
  Seconds w = 0.0;
};

Real mean_delta_for_columns(const std::vector<Case>& cases,
                            const std::vector<std::size_t>& columns) {
  const core::APosterioriDetector detector;
  RealVector deltas;
  for (const auto& item : cases) {
    features::WindowedFeatures subset;
    subset.features = item.windowed.features.select_columns(columns);
    subset.window_start_s = item.windowed.window_start_s;
    subset.window_seconds = item.windowed.window_seconds;
    subset.hop_seconds = item.windowed.hop_seconds;
    const signal::Interval label = detector.label(subset, item.w);
    deltas.push_back(
        core::deviation_seconds(item.record.seizures().front(), label));
  }
  return stats::mean(deltas);
}

}  // namespace

int main() {
  bench::print_header(
      "ABLATION: backward elimination over the 10-feature set (SIII-A)");

  const sim::CohortSimulator simulator;
  const features::PaperFeatureExtractor extractor;
  std::vector<Case> cases;
  for (const std::size_t p : {0u, 4u, 7u}) {
    const auto events = simulator.events_for_patient(p);
    // Two seizures per patient keep the wrapper search tractable.
    for (std::size_t e = 0; e < 2 && e < events.size(); ++e) {
      Case item{simulator.synthesize_sample(events[e], 0, 900.0, 1100.0),
                {},
                simulator.average_seizure_duration(p)};
      item.windowed = features::extract_windowed_features(item.record, extractor);
      cases.push_back(std::move(item));
    }
  }
  std::fprintf(stderr, "prepared %zu cases; running wrapper elimination...\n",
               cases.size());

  // Wrapper score: negative mean deviation (higher = better).
  const features::SubsetScore score =
      [&cases](const std::vector<std::size_t>& columns) {
        return -mean_delta_for_columns(cases, columns);
      };
  const features::EliminationResult elimination =
      features::backward_elimination(10, score, 1);

  const auto names = extractor.feature_names();
  std::printf("relevance ranking (most relevant first):\n");
  for (std::size_t i = 0; i < elimination.ranking.size(); ++i) {
    std::printf("  %2zu. %s\n", i + 1,
                names[elimination.ranking[i]].c_str());
  }

  std::printf("\n%-12s %-18s %-30s\n", "kept k", "mean delta (s)",
              "per-window cost (relative)");
  for (std::size_t k = 1; k <= 10; ++k) {
    std::vector<std::size_t> top(elimination.ranking.begin(),
                                 elimination.ranking.begin() +
                                     static_cast<std::ptrdiff_t>(k));
    std::printf("%-12zu %-18.2f %-30.1f\n", k,
                mean_delta_for_columns(cases, top),
                static_cast<double>(k) / 10.0);
  }
  std::printf("\nexpected shape: deviation saturates well before k = 10 while\n"
              "cost grows linearly in k — the paper's accuracy/complexity\n"
              "trade-off argument for stopping at ten features.\n");
  return 0;
}

// Microbenchmarks of Algorithm 1 (google-benchmark):
//  * naive O(L^2 W F) engine vs the exact optimized engine,
//  * scaling in L (validates the quadratic/linear complexity claims),
//  * the paper's Cortex-M3 "1 s of signal per second" budget estimate.
#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "core/aposteriori.hpp"
#include "features/normalize.hpp"
#include "platform/wearable.hpp"

namespace {

using namespace esl;

Matrix random_features(std::size_t length, std::size_t features,
                       std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(length, features);
  for (std::size_t r = 0; r < length; ++r) {
    for (std::size_t f = 0; f < features; ++f) {
      m(r, f) = rng.normal();
    }
  }
  return features::zscore_normalized(m);
}

// Fixed W and F so the complexity fits isolate the dependence on L:
// the naive engine is O(L^2 W F) -> O(N^2); the optimized one
// O(F (L log L + L W)) -> ~O(N).
constexpr std::size_t k_fixed_window = 32;

void bm_naive(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_features(length, 10, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::distance_curve(
        x, k_fixed_window, 4, core::DistanceEngine::kNaive));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_naive)->RangeMultiplier(2)->Range(128, 1024)->Complexity();

void bm_optimized(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_features(length, 10, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::distance_curve(
        x, k_fixed_window, 4, core::DistanceEngine::kOptimized));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_optimized)->RangeMultiplier(2)->Range(128, 4096)->Complexity();

void bm_full_detect_hour_record(benchmark::State& state) {
  // Paper-scale input: 1 h of signal -> L = 3597 feature points, W = 60.
  const Matrix x = random_features(3597, 10, 7);
  const core::APosterioriDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(x, 60));
  }
}
BENCHMARK(bm_full_detect_hour_record)->Unit(benchmark::kMillisecond);

void bm_mcu_budget_model(benchmark::State& state) {
  // Analytic cycle-budget estimate (instantaneous); reported as the
  // seconds-per-signal-second counter so the paper claim ("one second of
  // signal is processed in one second", ~1.0) is visible in the output.
  for (auto _ : state) {
    auto estimate = platform::labeling_time_on_mcu(3600.0, 60.0, 10);
    benchmark::DoNotOptimize(estimate);
  }
  state.counters["mcu_sec_per_signal_sec"] = benchmark::Counter(
      platform::labeling_time_on_mcu(3600.0, 60.0, 10).seconds_per_signal_second);
}
BENCHMARK(bm_mcu_budget_model);

}  // namespace

BENCHMARK_MAIN();

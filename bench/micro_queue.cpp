// Microbenchmarks of the shard ingest queues: the mutex+condvar MPSC
// queue (any number of producers) vs the lock-free SPSC ring the
// serving tier selects when the event loop is the only producer
// (engine/ingest_queue.hpp). Both carry identical IngestChunk payloads
// through the same interface, so the delta is pure synchronization
// cost: lock/unlock and condvar signalling on one side, two atomic
// stores and a cached-head check on the other.
//
// Two modes:
//  * default: Google Benchmark suite (uncontended push+drain cycle per
//    queue type across capacities);
//  * --json PATH: self-timed producer/consumer matrix — mutex x
//    {1,2,4} producers, spsc x 1 producer, capacities {16,256} —
//    reporting steady-state ops/sec and p99 push latency, written as
//    machine-readable JSON (BENCH_queue.json in CI).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "alloc_compare.hpp"
#include "engine/ingest_queue.hpp"

ESL_DEFINE_COUNTING_ALLOCATOR();

namespace {

using namespace esl;
using engine::IngestChunk;
using engine::IngestQueue;
using engine::MutexIngestQueue;
using engine::SpscIngestQueue;

constexpr std::size_t k_chunk_samples = 64;  // small: queue cost dominates

std::vector<std::span<const Real>> probe_chunk(const RealVector& storage) {
  return {std::span<const Real>(storage)};
}

std::unique_ptr<IngestQueue> make_queue(const std::string& kind,
                                        std::size_t capacity) {
  if (kind == "spsc") {
    return std::make_unique<SpscIngestQueue>(capacity);
  }
  return std::make_unique<MutexIngestQueue>(capacity);
}

// --------------------------------------------------- default (GB) mode
// Uncontended single-thread push+drain cycle: the floor each queue adds
// to an ingest call when the consumer keeps up.

template <typename Queue>
void bm_push_drain(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  Queue queue(capacity);
  const RealVector storage(k_chunk_samples, 0.5);
  const auto chunk = probe_chunk(storage);
  std::vector<IngestChunk> drained;
  std::size_t pushed = 0;
  for (auto _ : state) {
    queue.push(pushed++, chunk);
    if (pushed % capacity == capacity - 1) {
      queue.pop_all(drained);
      queue.recycle(drained);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_mutex_push_drain(benchmark::State& state) {
  bm_push_drain<MutexIngestQueue>(state);
}
void bm_spsc_push_drain(benchmark::State& state) {
  bm_push_drain<SpscIngestQueue>(state);
}

BENCHMARK(bm_mutex_push_drain)->Arg(16)->Arg(256);
BENCHMARK(bm_spsc_push_drain)->Arg(16)->Arg(256);

// --------------------------------------------------------------- --json
// Real producer/consumer runs with per-push latency capture.

struct QueueResult {
  std::string queue;
  std::size_t producers = 0;
  std::size_t capacity = 0;
  double ops_per_s = 0.0;
  double p99_push_ns = 0.0;
};

QueueResult run_config(const std::string& kind, std::size_t producers,
                       std::size_t capacity, std::size_t total_ops) {
  using Clock = std::chrono::steady_clock;
  const std::size_t per_producer = total_ops / producers;

  const auto run_once = [&](bool timed) -> QueueResult {
    const std::unique_ptr<IngestQueue> queue = make_queue(kind, capacity);
    const std::size_t expected = per_producer * producers;

    // The consumer runs the shard-worker loop: park when empty, drain
    // everything when woken — the same regime ThreadPoolBackend workers
    // run in production.
    std::thread consumer([&] {
      std::vector<IngestChunk> chunks;
      std::size_t drained = 0;
      while (drained < expected) {
        queue->wait();
        drained += queue->pop_all(chunks);
        queue->recycle(chunks);
      }
    });

    std::vector<std::vector<double>> latencies(producers);
    std::vector<std::thread> threads;
    const auto start = Clock::now();
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        const RealVector storage(k_chunk_samples,
                                 static_cast<Real>(p) * 0.25);
        const auto chunk = probe_chunk(storage);
        std::vector<double>& mine = latencies[p];
        mine.reserve(per_producer / 8 + 1);
        for (std::size_t i = 0; i < per_producer; ++i) {
          // Sample every 8th push: two clock reads cost as much as the
          // push itself, so timing each one would swamp the signal.
          if ((i & 7) != 0) {
            queue->push(i, chunk);
            continue;
          }
          const auto before = Clock::now();
          queue->push(i, chunk);
          mine.push_back(
              std::chrono::duration<double, std::nano>(Clock::now() - before)
                  .count());
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    consumer.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    QueueResult result{kind, producers, capacity, 0.0, 0.0};
    if (!timed) {
      return result;
    }
    std::vector<double> merged;
    merged.reserve(expected);
    for (const auto& mine : latencies) {
      merged.insert(merged.end(), mine.begin(), mine.end());
    }
    std::sort(merged.begin(), merged.end());
    result.ops_per_s = static_cast<double>(expected) / elapsed;
    result.p99_push_ns = merged[(merged.size() * 99) / 100];
    return result;
  };

  run_once(false);  // warm-up: slot storage, pools, thread stacks
  return run_once(true);
}

int run_json_mode(const std::string& path) {
  constexpr std::size_t k_total_ops = 200000;
  struct Config {
    const char* queue;
    std::size_t producers;
  };
  // The spsc ring's contract is one producer; the mutex queue covers the
  // multi-producer shapes the in-process service sees.
  const Config configs[] = {
      {"mutex", 1}, {"mutex", 2}, {"mutex", 4}, {"spsc", 1}};

  std::vector<QueueResult> results;
  for (const Config& config : configs) {
    for (const std::size_t capacity : {16u, 256u}) {
      results.push_back(run_config(config.queue, config.producers, capacity,
                                   k_total_ops));
    }
  }

  std::printf("%-8s %10s %9s %14s %13s\n", "queue", "producers", "capacity",
              "ops/s", "p99 push ns");
  for (const QueueResult& r : results) {
    std::printf("%-8s %10zu %9zu %14.0f %13.0f\n", r.queue.c_str(),
                r.producers, r.capacity, r.ops_per_s, r.p99_push_ns);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_queue\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const QueueResult& r = results[i];
    std::fprintf(f,
                 "    {\"queue\": \"%s\", \"producers\": %zu, \"capacity\": "
                 "%zu, \"ops_per_s\": %.1f, \"p99_push_ns\": %.1f}%s\n",
                 r.queue.c_str(), r.producers, r.capacity, r.ops_per_s,
                 r.p99_push_ns, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return esl::bench::benchmark_main_with_json(argc, argv, run_json_mode);
}

// Streaming engine throughput: windows/sec vs. concurrent session count,
// single- vs. batched-inference.
//
// Two measurements per session count N:
//   * inference stage in isolation — the N feature rows one poll round
//     drains (one ready window per session) classified (a) row by row
//     with RealtimeDetector::predict_row (the per-window single-session
//     loop) and (b) through the engine's batched path (gather rows,
//     z-score the batch in place, one tree-major forest pass);
//   * end-to-end engine streaming — N sessions ingesting 1-second chunks
//     with a poll per round, reporting total windows/sec.
//
// The batched win grows with N because the tree-major pass keeps each
// tree's node array cache-hot across the whole batch and amortizes the
// scaling sweep; per-row traversal re-walks all trees cold per window.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/realtime_detector.hpp"
#include "engine/engine.hpp"
#include "ml/dataset.hpp"
#include "sim/cohort.hpp"

namespace {

using namespace esl;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::span<const Real>> chunk_views(const signal::EegRecord& record,
                                               std::size_t offset,
                                               std::size_t count) {
  std::vector<std::span<const Real>> views;
  for (std::size_t c = 0; c < record.channel_count(); ++c) {
    views.push_back(
        std::span<const Real>(record.channel(c).samples).subspan(offset, count));
  }
  return views;
}

/// Inference-stage comparison on one poll round's worth of rows (N rows,
/// one ready window per session). Returns {single_wps, batched_wps}.
std::pair<double, double> inference_stage(const core::RealtimeDetector& det,
                                          const Matrix& rows,
                                          std::size_t target_windows) {
  const std::size_t n = rows.rows();
  const std::size_t reps = std::max<std::size_t>(1, target_windows / n);

  // (a) per-window single-session loop.
  RealVector scratch;
  int sink = 0;
  auto start = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t r = 0; r < n; ++r) {
      sink += det.predict_row(rows.row(r), scratch);
    }
  }
  const double single_s = seconds_since(start);

  // (b) engine-style batched path: gather + in-place scale + one
  // tree-major forest pass, all through reused scratch buffers.
  Matrix batch;
  batch.reserve_rows(n, rows.cols());
  RealVector proba;
  std::vector<int> labels;
  start = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    batch.clear_rows();
    for (std::size_t r = 0; r < n; ++r) {
      batch.append_row(rows.row(r));
    }
    det.scale_rows_in_place(batch);
    det.forest().predict_all_into(batch, proba, labels);
    sink += labels.empty() ? 0 : labels[0];
  }
  const double batched_s = seconds_since(start);
  if (sink == -1) {
    std::printf("(unreachable checksum %d)\n", sink);  // keep calls live
  }

  const double total = static_cast<double>(reps * n);
  return {total / single_s, total / batched_s};
}

/// End-to-end engine streaming: N sessions, 1 s chunks, poll per round.
double end_to_end(const std::shared_ptr<const core::RealtimeDetector>& det,
                  const signal::EegRecord& record, std::size_t sessions,
                  Seconds stream_seconds) {
  engine::Engine eng(det);
  for (std::size_t s = 0; s < sessions; ++s) {
    eng.add_session();
  }
  const auto chunk = static_cast<std::size_t>(record.sample_rate_hz());
  const auto rounds = static_cast<std::size_t>(stream_seconds);
  const std::size_t length = record.length_samples();

  const auto start = Clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t s = 0; s < sessions; ++s) {
      // Stagger sessions through the record so batches mix signal.
      const std::size_t offset = ((round + s * 37) * chunk) % (length - chunk);
      eng.ingest(s, chunk_views(record, offset, chunk));
    }
    eng.poll();
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(eng.stats().windows_classified) / elapsed;
}

}  // namespace

int main() {
  esl::bench::print_header(
      "Engine throughput: single- vs batched-inference by session count");

  const sim::CohortSimulator simulator;
  const auto events = simulator.events_for_patient(4);
  const signal::EegRecord train_record =
      simulator.synthesize_sample(events[0], 0, 500.0, 600.0);
  const signal::EegRecord stream_record =
      simulator.synthesize_background_record(4, 120.0, 3);

  ml::Dataset train =
      core::build_window_dataset(train_record, train_record.seizures());
  Rng rng(1);
  auto detector = std::make_shared<core::RealtimeDetector>();
  detector->fit(ml::balance_classes(train, rng), 7);

  // One poll round's rows per session count, cut from real features.
  const features::EglassFeatureExtractor extractor(2);
  const features::WindowedFeatures windowed =
      features::extract_windowed_features(stream_record, extractor);

  std::printf("%8s %16s %16s %9s %14s\n", "sessions", "single (w/s)",
              "batched (w/s)", "speedup", "engine (w/s)");
  for (const std::size_t sessions : {1u, 4u, 16u, 64u, 256u}) {
    Matrix rows(sessions, windowed.features.cols());
    for (std::size_t r = 0; r < sessions; ++r) {
      const auto src = windowed.features.row(r % windowed.count());
      std::copy(src.begin(), src.end(), rows.row(r).begin());
    }
    const auto [single_wps, batched_wps] =
        inference_stage(*detector, rows, 100000);
    if (sessions <= 64) {
      const double engine_wps =
          end_to_end(detector, stream_record, sessions, 30.0);
      std::printf("%8zu %16.0f %16.0f %8.2fx %14.0f\n", sessions, single_wps,
                  batched_wps, batched_wps / single_wps, engine_wps);
    } else {
      std::printf("%8zu %16.0f %16.0f %8.2fx %14s\n", sessions, single_wps,
                  batched_wps, batched_wps / single_wps, "-");
    }
  }
  std::printf(
      "\nsingle  = per-window RealtimeDetector::predict_row loop\n"
      "batched = engine path: gather + in-place z-score + tree-major forest\n"
      "engine  = end-to-end streaming windows/sec (feature extraction "
      "included), 1 s chunks, one poll per round\n");
  return 0;
}

// Streaming engine + service throughput.
//
// Three measurements:
//   * inference stage in isolation — N feature rows (one ready window per
//     session) classified (a) row by row with
//     RealtimeDetector::predict_row, (b) through the engine's batched
//     tree-major path, and (c) through the compiled flat artifact
//     (ml::CompiledForest). The batched win grows with N because each
//     tree's node array stays cache-hot across the batch; the compiled
//     win comes from traversing contiguous SoA arrays instead of hopping
//     nodes (build with -DESL_NATIVE=ON to let it vectorize).
//   * end-to-end single Engine — N sessions ingesting 1-second chunks
//     with a poll per round (feature extraction included).
//   * sharded DetectionService — fixed session count spread over
//     1/2/4/8 shards under the InlineBackend (caller thread) and the
//     ThreadPoolBackend (one worker per shard, bounded MPSC ingest
//     queues). On multi-core hardware the threaded backend scales with
//     shard count; on a single core it shows the queue/handoff overhead.
//
// Usage:
//   engine_throughput [--json PATH] [--sessions N] [--seconds S]
//                     [--shards CSV] [--backend inline|threads|both]
//                     [--model forest|compiled] [--artifact-dir DIR]
//                     [--serve ADDR] [--connect ADDR] [--no-wire]
//
// --model selects the artifact the end-to-end engine/service runs deploy
// to every session (compiled = swap_model with the compiled fleet
// artifact; detections are bit-identical either way).
//
// --artifact-dir enables the model-artifact stage in DIR: save latency,
// cold-mmap vs registry-cached load latency, mapped-model serving
// throughput (both traversal flavors, parity-checked against the
// in-memory compiled artifact), and the fleet redeploy numbers —
// swap-from-disk latency plus time to the first window classified after
// the swap, measured under live ThreadPoolBackend ingest.
//
// The wire stage prices the cross-process serving tier: by default a
// ShardServer is started in-process on a loopback unix socket and the
// same streaming workload is driven once through a RemoteBackend
// (every chunk crosses the socket) and once through the in-process
// ThreadPoolBackend, reporting sessions/sec (open-session round trips)
// and windows/sec for both. `--serve ADDR` instead runs only the
// server side and blocks (for cross-machine measurements); `--connect
// ADDR` runs only the client side against an external server;
// `--no-wire` skips the stage.
//
// --json writes the backend x shard-count matrix (plus the inference
// numbers, including the compiled-vs-baseline speedup, the wire
// section, and the artifact stage when enabled) as machine-readable
// JSON, e.g. BENCH_engine.json, so the perf trajectory can be tracked
// across commits.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/realtime_detector.hpp"
#include "engine/model_registry.hpp"
#include "engine/service.hpp"
#include "ml/artifact.hpp"
#include "ml/dataset.hpp"
#include "net/client.hpp"
#include "net/shard_server.hpp"
#include "sim/cohort.hpp"

namespace {

using namespace esl;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::span<const Real>> chunk_views(const signal::EegRecord& record,
                                               std::size_t offset,
                                               std::size_t count) {
  std::vector<std::span<const Real>> views;
  for (std::size_t c = 0; c < record.channel_count(); ++c) {
    views.push_back(
        std::span<const Real>(record.channel(c).samples).subspan(offset, count));
  }
  return views;
}

struct InferenceResult {
  double single_wps = 0.0;
  double batched_wps = 0.0;
  double compiled_wps = 0.0;
};

/// Inference-stage comparison on one poll round's worth of rows (N rows,
/// one ready window per session): per-row loop, batched node-hopping
/// interpreter, and the compiled flat artifact.
InferenceResult inference_stage(const core::RealtimeDetector& det,
                                const Matrix& rows,
                                std::size_t target_windows) {
  const std::size_t n = rows.rows();
  const std::size_t reps = std::max<std::size_t>(1, target_windows / n);

  // (a) per-window single-session loop.
  RealVector scratch;
  int sink = 0;
  auto start = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t r = 0; r < n; ++r) {
      sink += det.predict_row(rows.row(r), scratch);
    }
  }
  const double single_s = seconds_since(start);

  // (b) engine-style batched path: gather + in-place scale + one
  // tree-major forest pass, all through reused scratch buffers.
  Matrix batch;
  batch.reserve_rows(n, rows.cols());
  RealVector proba;
  std::vector<int> labels;
  start = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    batch.clear_rows();
    for (std::size_t r = 0; r < n; ++r) {
      batch.append_row(rows.row(r));
    }
    det.scale_rows_in_place(batch);
    det.forest().predict_all_into(batch, proba, labels);
    sink += labels.empty() ? 0 : labels[0];
  }
  const double batched_s = seconds_since(start);

  // (c) compiled flat artifact: same gather, scale + traversal inside
  // the model (what a swap_model-deployed session runs per poll).
  const std::shared_ptr<const ml::CompiledForest> compiled = det.compile();
  start = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    batch.clear_rows();
    for (std::size_t r = 0; r < n; ++r) {
      batch.append_row(rows.row(r));
    }
    compiled->predict_into(batch, proba, labels);
    sink += labels.empty() ? 0 : labels[0];
  }
  const double compiled_s = seconds_since(start);
  if (sink == -1) {
    std::printf("(unreachable checksum %d)\n", sink);  // keep calls live
  }

  const double total = static_cast<double>(reps * n);
  return {total / single_s, total / batched_s, total / compiled_s};
}

/// End-to-end single Engine: N sessions, 1 s chunks, poll per round.
/// `compiled` deploys the compiled fleet artifact to every session
/// (the --model=compiled path; detections are bit-identical).
double engine_end_to_end(
    const std::shared_ptr<const core::RealtimeDetector>& det,
    const signal::EegRecord& record, std::size_t sessions,
    Seconds stream_seconds, bool compiled) {
  engine::Engine eng(det);
  const std::shared_ptr<const ml::CompiledForest> artifact =
      compiled ? det->compile() : nullptr;
  for (std::size_t s = 0; s < sessions; ++s) {
    const std::uint64_t id = eng.add_session();
    if (artifact != nullptr) {
      eng.swap_model(id, artifact);
    }
  }
  const auto chunk = static_cast<std::size_t>(record.sample_rate_hz());
  const auto rounds = static_cast<std::size_t>(stream_seconds);
  const std::size_t length = record.length_samples();

  const auto start = Clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t s = 0; s < sessions; ++s) {
      // Stagger sessions through the record so batches mix signal.
      const std::size_t offset = ((round + s * 37) * chunk) % (length - chunk);
      eng.ingest(s, chunk_views(record, offset, chunk));
    }
    eng.poll();
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(eng.stats().windows_classified) / elapsed;
}

/// Detections go nowhere: the bench measures the pipeline, not a consumer.
class NullSink final : public engine::DetectionSink {
 public:
  void on_detections(std::span<const engine::Detection>) override {}
};

/// End-to-end DetectionService: `sessions` hash-partitioned over
/// `shards`, 1 s chunks, one flush per round.
double service_end_to_end(
    const std::shared_ptr<const core::RealtimeDetector>& det,
    const signal::EegRecord& record, std::size_t sessions,
    std::size_t shards, bool threaded, Seconds stream_seconds,
    bool compiled) {
  engine::ServiceConfig config;
  config.shards = shards;
  std::unique_ptr<engine::ExecutionBackend> backend;
  if (threaded) {
    backend = std::make_unique<engine::ThreadPoolBackend>();
  }
  engine::DetectionService service(det, config, std::move(backend));
  NullSink sink;
  service.set_detection_sink(&sink);
  const std::shared_ptr<const ml::CompiledForest> artifact =
      compiled ? det->compile() : nullptr;
  std::vector<engine::SessionHandle> handles;
  for (std::size_t s = 0; s < sessions; ++s) {
    handles.push_back(service.create_session(s, engine::SessionConfig{}));
    if (artifact != nullptr) {
      service.swap_model(handles.back(), artifact);
    }
  }
  const auto chunk = static_cast<std::size_t>(record.sample_rate_hz());
  const auto rounds = static_cast<std::size_t>(stream_seconds);
  const std::size_t length = record.length_samples();

  const auto start = Clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t s = 0; s < sessions; ++s) {
      const std::size_t offset = ((round + s * 37) * chunk) % (length - chunk);
      service.ingest(handles[s], chunk_views(record, offset, chunk));
    }
    service.flush();
  }
  const double elapsed = seconds_since(start);
  const double wps =
      static_cast<double>(service.stats().windows_classified) / elapsed;
  service.stop();
  return wps;
}

struct ServiceResult {
  const char* backend;
  std::size_t shards;
  double windows_per_s;
};

// ----------------------------------------------------------- wire stage

struct WireResult {
  std::size_t shards = 0;
  double wire_sessions_per_s = 0.0;    // open-session round trips
  double wire_windows_per_s = 0.0;     // every chunk crosses the socket
  double inproc_sessions_per_s = 0.0;  // same workload, ThreadPoolBackend
  double inproc_windows_per_s = 0.0;
  // Per-round ingest+flush round-trip time — the delay between samples
  // arriving and their windows being classified, i.e. the per-window
  // delivery-latency proxy for a 1 s streaming cadence.
  double wire_latency_p50_ms = 0.0;
  double wire_latency_p99_ms = 0.0;
  double inproc_latency_p50_ms = 0.0;
  double inproc_latency_p99_ms = 0.0;
};

constexpr std::size_t k_wire_shards = 2;

/// Drives the service_end_to_end workload through `service`, timing
/// session creation separately from streaming. `windows` reads the
/// classified-window counter wherever the compute actually runs (the
/// remote server for the wire run — the client's mirror Engines never
/// classify). Each round's ingest+flush round trip is recorded; the
/// p50/p99 of those are the per-window delivery-latency proxy.
template <typename WindowCount>
void drive_service(engine::DetectionService& service,
                   const signal::EegRecord& record, std::size_t sessions,
                   Seconds stream_seconds, WindowCount&& windows,
                   double& sessions_per_s, double& windows_per_s,
                   double& latency_p50_ms, double& latency_p99_ms) {
  auto start = Clock::now();
  std::vector<engine::SessionHandle> handles;
  for (std::size_t s = 0; s < sessions; ++s) {
    handles.push_back(service.create_session(s, engine::SessionConfig{}));
  }
  sessions_per_s = static_cast<double>(sessions) / seconds_since(start);

  const auto chunk = static_cast<std::size_t>(record.sample_rate_hz());
  const auto rounds = static_cast<std::size_t>(stream_seconds);
  const std::size_t length = record.length_samples();
  std::vector<double> round_ms;
  round_ms.reserve(rounds);
  const std::uint64_t before = windows();
  start = Clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto round_start = Clock::now();
    for (std::size_t s = 0; s < sessions; ++s) {
      const std::size_t offset = ((round + s * 37) * chunk) % (length - chunk);
      service.ingest(handles[s], chunk_views(record, offset, chunk));
    }
    service.flush();
    round_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - round_start)
            .count());
  }
  const double elapsed = seconds_since(start);
  windows_per_s = static_cast<double>(windows() - before) / elapsed;
  if (!round_ms.empty()) {
    std::sort(round_ms.begin(), round_ms.end());
    latency_p50_ms = round_ms[round_ms.size() / 2];
    latency_p99_ms = round_ms[(round_ms.size() * 99) / 100];
  }
}

/// Client side of the wire stage: the streaming workload through a
/// RemoteBackend (socket) and through the in-process ThreadPoolBackend.
WireResult wire_client_stage(
    const std::shared_ptr<const core::RealtimeDetector>& det,
    const signal::EegRecord& record, std::size_t sessions,
    Seconds stream_seconds, const platform::SocketAddress& address) {
  WireResult result;
  result.shards = k_wire_shards;
  NullSink sink;
  {
    engine::ServiceConfig config;
    config.shards = k_wire_shards;
    auto backend = std::make_unique<net::RemoteBackend>(address);
    net::RemoteBackend* remote = backend.get();
    engine::DetectionService service(det, config, std::move(backend));
    service.set_detection_sink(&sink);
    drive_service(
        service, record, sessions, stream_seconds,
        [&] { return remote->remote_stats().windows_classified; },
        result.wire_sessions_per_s, result.wire_windows_per_s,
        result.wire_latency_p50_ms, result.wire_latency_p99_ms);
    service.stop();
  }
  {
    engine::ServiceConfig config;
    config.shards = k_wire_shards;
    engine::DetectionService service(
        det, config, std::make_unique<engine::ThreadPoolBackend>());
    service.set_detection_sink(&sink);
    drive_service(
        service, record, sessions, stream_seconds,
        [&] { return service.stats().windows_classified; },
        result.inproc_sessions_per_s, result.inproc_windows_per_s,
        result.inproc_latency_p50_ms, result.inproc_latency_p99_ms);
    service.stop();
  }
  return result;
}

// ------------------------------------------------- model artifact stage

struct ArtifactResult {
  double save_ms = 0.0;
  double cold_open_ms = 0.0;    // fresh mmap + header validation
  double cached_open_ms = 0.0;  // registry LRU hit
  double compiled_wps = 0.0;    // in-memory baseline, same batch loop
  double mapped_wps = 0.0;
  double mapped_simd_wps = 0.0;
  bool parity = false;
  double swap_cold_ms = 0.0;  // replaced file: stat + mmap + deploy
  double swap_warm_ms = 0.0;  // cached mapping: stat + deploy
  double first_window_after_swap_ms = 0.0;
};

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Records the delay from arm() to the first delivered window of the
/// armed session — the observable redeploy-to-serving latency.
class SwapLatencySink final : public engine::DetectionSink {
 public:
  void arm(std::uint64_t session_id) {
    target_ = session_id;
    start_ = Clock::now();
    armed_.store(true, std::memory_order_release);
  }
  void on_detections(std::span<const engine::Detection> detections) override {
    if (!armed_.load(std::memory_order_acquire)) {
      return;
    }
    for (const engine::Detection& d : detections) {
      if (d.session_id == target_) {
        latency_ms_.store(ms_since(start_), std::memory_order_relaxed);
        armed_.store(false, std::memory_order_release);
        return;
      }
    }
  }
  double latency_ms() const {
    return latency_ms_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> armed_{false};
  std::uint64_t target_ = 0;  // written before armed_ release, read after acquire
  Clock::time_point start_;
  std::atomic<double> latency_ms_{0.0};
};

/// Per-model serving throughput on the inference_stage batch loop.
double serving_wps(const ml::InferenceModel& model, const Matrix& rows,
                   std::size_t target_windows) {
  const std::size_t n = rows.rows();
  const std::size_t reps = std::max<std::size_t>(1, target_windows / n);
  Matrix batch;
  batch.reserve_rows(n, rows.cols());
  RealVector proba;
  std::vector<int> labels;
  const auto start = Clock::now();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    batch.clear_rows();
    for (std::size_t r = 0; r < n; ++r) {
      batch.append_row(rows.row(r));
    }
    model.predict_into(batch, proba, labels);
  }
  return static_cast<double>(reps * n) / seconds_since(start);
}

ArtifactResult artifact_stage(
    const std::shared_ptr<const core::RealtimeDetector>& det,
    const signal::EegRecord& record, const Matrix& rows,
    const std::string& dir) {
  ArtifactResult result;
  const std::shared_ptr<const ml::CompiledForest> compiled = det->compile();
  const std::string path = dir + "/bench_fleet.eslm";

  auto start = Clock::now();
  ml::save_artifact(path, *compiled);
  result.save_ms = ms_since(start);

  start = Clock::now();
  const auto mapped = ml::load_artifact(path);
  result.cold_open_ms = ms_since(start);

  engine::RegistryConfig registry_config;
  registry_config.directory = dir;
  const engine::ModelRegistry registry(registry_config);
  (void)registry.open("bench_fleet");  // populate the cache
  start = Clock::now();
  const auto cached = registry.open("bench_fleet");
  result.cached_open_ms = ms_since(start);

  // Serving throughput + parity: mapped models must match the in-memory
  // compiled artifact bit for bit while serving straight from the file.
  const auto mapped_simd =
      ml::load_artifact(path, ml::InferenceBackend::kSimd);
  result.compiled_wps = serving_wps(*compiled, rows, 100000);
  result.mapped_wps = serving_wps(*mapped, rows, 100000);
  result.mapped_simd_wps = serving_wps(*mapped_simd, rows, 100000);
  {
    Matrix batch = rows;
    RealVector proba_compiled;
    std::vector<int> labels_compiled;
    compiled->predict_into(batch, proba_compiled, labels_compiled);
    batch = rows;
    RealVector proba_mapped;
    std::vector<int> labels_mapped;
    mapped->predict_into(batch, proba_mapped, labels_mapped);
    result.parity =
        proba_mapped == proba_compiled && labels_mapped == labels_compiled;
  }

  // Fleet redeploy under live ingest: sessions stream on worker threads
  // while a replaced artifact is swapped in from disk.
  engine::ServiceConfig config;
  config.shards = 2;
  engine::DetectionService service(
      det, config, std::make_unique<engine::ThreadPoolBackend>());
  SwapLatencySink sink;
  service.set_detection_sink(&sink);
  constexpr std::size_t k_swap_sessions = 8;
  std::vector<engine::SessionHandle> handles;
  for (std::size_t s = 0; s < k_swap_sessions; ++s) {
    handles.push_back(service.create_session(s, engine::SessionConfig{}));
  }
  const auto chunk = static_cast<std::size_t>(record.sample_rate_hz());
  const std::size_t length = record.length_samples();
  const std::size_t rounds = 20;
  for (std::size_t round = 0; round < rounds; ++round) {
    if (round == rounds / 2) {
      // Trainer redeploys: replace the file (atomic rename), drop the
      // stale mapping, then deploy cold (remap) and warm (cache hit).
      ml::save_artifact(path, *compiled);
      registry.refresh();
      sink.arm(handles[0].value);
      start = Clock::now();
      service.swap_model(handles[0], registry, "bench_fleet");
      result.swap_cold_ms = ms_since(start);
      start = Clock::now();
      service.swap_model(handles[1], registry, "bench_fleet");
      result.swap_warm_ms = ms_since(start);
    }
    for (std::size_t s = 0; s < k_swap_sessions; ++s) {
      const std::size_t offset = ((round + s * 37) * chunk) % (length - chunk);
      service.ingest(handles[s], chunk_views(record, offset, chunk));
    }
  }
  service.flush();
  service.stop();
  result.first_window_after_swap_ms = sink.latency_ms();
  return result;
}

struct Options {
  std::string json_path;
  std::size_t sessions = 32;
  Seconds stream_seconds = 20.0;
  std::vector<std::size_t> shards = {1, 2, 4, 8};
  bool run_inline = true;
  bool run_threads = true;
  /// Artifact deployed to end-to-end sessions: the fleet ForestModel
  /// ("forest") or the compiled flat artifact via swap_model
  /// ("compiled").
  std::string model = "forest";
  /// When non-empty, run the model-artifact stage in this directory
  /// (save/load latency, mapped serving throughput, swap-from-disk).
  std::string artifact_dir;
  /// --serve: run only the ShardServer side on this address and block.
  std::string serve_address;
  /// --connect: run the wire client stage against this external server
  /// instead of an in-process loopback one.
  std::string connect_address;
  /// --no-wire clears this (the wire stage needs POSIX sockets).
  bool run_wire = true;
};

Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opts.json_path = value();
    } else if (arg == "--sessions") {
      opts.sessions = static_cast<std::size_t>(std::atol(value()));
    } else if (arg == "--seconds") {
      opts.stream_seconds = std::atof(value());
    } else if (arg == "--shards") {
      opts.shards.clear();
      for (const char* token = std::strtok(const_cast<char*>(value()), ",");
           token != nullptr; token = std::strtok(nullptr, ",")) {
        opts.shards.push_back(static_cast<std::size_t>(std::atol(token)));
      }
    } else if (arg == "--backend") {
      const std::string backend = value();
      if (backend != "inline" && backend != "threads" && backend != "both") {
        std::fprintf(stderr, "unknown --backend %s\n", backend.c_str());
        std::exit(2);
      }
      opts.run_inline = backend == "inline" || backend == "both";
      opts.run_threads = backend == "threads" || backend == "both";
    } else if (arg == "--model") {
      opts.model = value();
      if (opts.model != "forest" && opts.model != "compiled") {
        std::fprintf(stderr, "unknown --model %s\n", opts.model.c_str());
        std::exit(2);
      }
    } else if (arg == "--artifact-dir") {
      opts.artifact_dir = value();
    } else if (arg == "--serve") {
      opts.serve_address = value();
    } else if (arg == "--connect") {
      opts.connect_address = value();
    } else if (arg == "--no-wire") {
      opts.run_wire = false;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

void write_json(
    const Options& opts,
    const std::vector<std::pair<std::size_t, InferenceResult>>& inference,
    const std::vector<std::pair<std::size_t, double>>& engine,
    const std::vector<ServiceResult>& services, const WireResult* wire,
    const ArtifactResult* artifact) {
  std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_throughput\",\n");
  std::fprintf(f, "  \"sessions\": %zu,\n  \"stream_seconds\": %.1f,\n",
               opts.sessions, opts.stream_seconds);
  std::fprintf(f, "  \"model\": \"%s\",\n", opts.model.c_str());
  std::fprintf(f, "  \"inference\": [\n");
  for (std::size_t i = 0; i < inference.size(); ++i) {
    const InferenceResult& r = inference[i].second;
    std::fprintf(f,
                 "    {\"rows\": %zu, \"single_wps\": %.1f, "
                 "\"batched_wps\": %.1f, \"compiled_wps\": %.1f, "
                 "\"compiled_speedup\": %.3f}%s\n",
                 inference[i].first, r.single_wps, r.batched_wps,
                 r.compiled_wps, r.compiled_wps / r.batched_wps,
                 i + 1 < inference.size() ? "," : "");
  }
  // End-to-end single-Engine streaming (feature extraction included):
  // the number the zero-alloc DSP work moves.
  std::fprintf(f, "  ],\n  \"engine\": [\n");
  for (std::size_t i = 0; i < engine.size(); ++i) {
    std::fprintf(f,
                 "    {\"sessions\": %zu, \"windows_per_s\": %.1f}%s\n",
                 engine[i].first, engine[i].second,
                 i + 1 < engine.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"service\": [\n");
  for (std::size_t i = 0; i < services.size(); ++i) {
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"shards\": %zu, "
                 "\"windows_per_s\": %.1f}%s\n",
                 services[i].backend, services[i].shards,
                 services[i].windows_per_s,
                 i + 1 < services.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  if (wire != nullptr) {
    std::fprintf(f, ",\n  \"wire\": {\n");
    std::fprintf(f, "    \"shards\": %zu,\n", wire->shards);
    std::fprintf(f, "    \"wire_sessions_per_s\": %.1f,\n",
                 wire->wire_sessions_per_s);
    std::fprintf(f, "    \"wire_windows_per_s\": %.1f,\n",
                 wire->wire_windows_per_s);
    std::fprintf(f, "    \"inproc_sessions_per_s\": %.1f,\n",
                 wire->inproc_sessions_per_s);
    std::fprintf(f, "    \"inproc_windows_per_s\": %.1f,\n",
                 wire->inproc_windows_per_s);
    std::fprintf(f, "    \"wire_latency_p50_ms\": %.3f,\n",
                 wire->wire_latency_p50_ms);
    std::fprintf(f, "    \"wire_latency_p99_ms\": %.3f,\n",
                 wire->wire_latency_p99_ms);
    std::fprintf(f, "    \"inproc_latency_p50_ms\": %.3f,\n",
                 wire->inproc_latency_p50_ms);
    std::fprintf(f, "    \"inproc_latency_p99_ms\": %.3f\n",
                 wire->inproc_latency_p99_ms);
    std::fprintf(f, "  }");
  }
  if (artifact == nullptr) {
    std::fprintf(f, "\n}\n");
  } else {
    std::fprintf(f, ",\n  \"artifact\": {\n");
    std::fprintf(f, "    \"save_ms\": %.3f,\n", artifact->save_ms);
    std::fprintf(f, "    \"cold_open_ms\": %.3f,\n", artifact->cold_open_ms);
    std::fprintf(f, "    \"cached_open_ms\": %.3f,\n",
                 artifact->cached_open_ms);
    std::fprintf(f, "    \"compiled_wps\": %.1f,\n", artifact->compiled_wps);
    std::fprintf(f, "    \"mapped_wps\": %.1f,\n", artifact->mapped_wps);
    std::fprintf(f, "    \"mapped_simd_wps\": %.1f,\n",
                 artifact->mapped_simd_wps);
    std::fprintf(f, "    \"parity\": %s,\n",
                 artifact->parity ? "true" : "false");
    std::fprintf(f, "    \"swap_cold_ms\": %.3f,\n", artifact->swap_cold_ms);
    std::fprintf(f, "    \"swap_warm_ms\": %.3f,\n", artifact->swap_warm_ms);
    std::fprintf(f, "    \"first_window_after_swap_ms\": %.3f\n",
                 artifact->first_window_after_swap_ms);
    std::fprintf(f, "  }\n}\n");
  }
  std::fclose(f);
  std::printf("\nwrote %s\n", opts.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_options(argc, argv);
  esl::bench::print_header(
      "Engine + service throughput: batching, sharding, backends");

  const sim::CohortSimulator simulator;
  const auto events = simulator.events_for_patient(4);
  const signal::EegRecord train_record =
      simulator.synthesize_sample(events[0], 0, 500.0, 600.0);
  const signal::EegRecord stream_record =
      simulator.synthesize_background_record(4, 120.0, 3);

  ml::Dataset train =
      core::build_window_dataset(train_record, train_record.seizures());
  Rng rng(1);
  auto detector = std::make_shared<core::RealtimeDetector>();
  detector->fit(ml::balance_classes(train, rng), 7);

  // One poll round's rows per session count, cut from real features.
  const features::EglassFeatureExtractor extractor(2);
  const features::WindowedFeatures windowed =
      features::extract_windowed_features(stream_record, extractor);

  if (!opts.serve_address.empty()) {
    // Server-only mode for cross-machine wire measurements: own the
    // shards here, let a --connect invocation elsewhere drive them.
    net::ShardServerConfig server_config;
    server_config.address =
        platform::SocketAddress::parse(opts.serve_address);
    server_config.service.shards = k_wire_shards;
    server_config.threaded_backend = true;
    net::ShardServer server(detector, server_config);
    server.start();
    std::printf("serving %zu shards on %s (ctrl-c to stop)\n", k_wire_shards,
                server.address().to_string().c_str());
    while (server.running()) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    return 0;
  }

  const bool compiled_model = opts.model == "compiled";
  std::printf("\n-- inference stage (isolated), single vs batched vs "
              "compiled --\n");
  std::printf("%8s %14s %14s %14s %9s %13s\n", "sessions", "single (w/s)",
              "batched (w/s)", "compiled (w/s)", "speedup",
              "engine (w/s)");
  std::vector<std::pair<std::size_t, InferenceResult>> inference;
  std::vector<std::pair<std::size_t, double>> engine;
  for (const std::size_t sessions : {1u, 4u, 16u, 64u, 256u}) {
    Matrix rows(sessions, windowed.features.cols());
    for (std::size_t r = 0; r < sessions; ++r) {
      const auto src = windowed.features.row(r % windowed.count());
      std::copy(src.begin(), src.end(), rows.row(r).begin());
    }
    const InferenceResult wps = inference_stage(*detector, rows, 100000);
    inference.emplace_back(sessions, wps);
    if (sessions <= 64) {
      const double engine_wps = engine_end_to_end(
          detector, stream_record, sessions, 30.0, compiled_model);
      engine.emplace_back(sessions, engine_wps);
      std::printf("%8zu %14.0f %14.0f %14.0f %7.2fx %13.0f\n", sessions,
                  wps.single_wps, wps.batched_wps, wps.compiled_wps,
                  wps.compiled_wps / wps.batched_wps, engine_wps);
    } else {
      std::printf("%8zu %14.0f %14.0f %14.0f %7.2fx %13s\n", sessions,
                  wps.single_wps, wps.batched_wps, wps.compiled_wps,
                  wps.compiled_wps / wps.batched_wps, "-");
    }
  }

  std::printf(
      "\n-- sharded service, %zu sessions (%s model), 1 s chunks, flush "
      "per round --\n",
      opts.sessions, opts.model.c_str());
  std::printf("%8s %16s %16s %9s\n", "shards", "inline (w/s)",
              "threads (w/s)", "speedup");
  std::vector<ServiceResult> services;
  for (const std::size_t shards : opts.shards) {
    double inline_wps = 0.0;
    double threads_wps = 0.0;
    if (opts.run_inline) {
      inline_wps =
          service_end_to_end(detector, stream_record, opts.sessions, shards,
                             false, opts.stream_seconds, compiled_model);
      services.push_back({"inline", shards, inline_wps});
    }
    if (opts.run_threads) {
      threads_wps =
          service_end_to_end(detector, stream_record, opts.sessions, shards,
                             true, opts.stream_seconds, compiled_model);
      services.push_back({"threads", shards, threads_wps});
    }
    if (opts.run_inline && opts.run_threads) {
      std::printf("%8zu %16.0f %16.0f %8.2fx\n", shards, inline_wps,
                  threads_wps, threads_wps / inline_wps);
    } else {
      std::printf("%8zu %16.0f %16.0f %9s\n", shards, inline_wps, threads_wps,
                  "-");
    }
  }

  WireResult wire;
  bool have_wire = false;
  if (opts.run_wire && ESL_HAVE_POSIX_SOCKETS) {
    // Wire stage: the same streaming workload with every chunk crossing
    // a socket, against an in-process loopback server unless --connect
    // names an external one.
    std::unique_ptr<net::ShardServer> server;
    platform::SocketAddress address;
    if (opts.connect_address.empty()) {
      const auto stamp = static_cast<unsigned long long>(
          Clock::now().time_since_epoch().count());
      const std::string path =
          (std::filesystem::temp_directory_path() /
           ("esl_bench_wire_" + std::to_string(stamp) + ".sock"))
              .string();
      address = platform::SocketAddress::parse("unix:" + path);
      net::ShardServerConfig server_config;
      server_config.address = address;
      server_config.service.shards = k_wire_shards;
      server_config.threaded_backend = true;
      server = std::make_unique<net::ShardServer>(detector, server_config);
      server->start();
    } else {
      address = platform::SocketAddress::parse(opts.connect_address);
    }
    wire = wire_client_stage(detector, stream_record, opts.sessions,
                             opts.stream_seconds, address);
    have_wire = true;
    if (server != nullptr) {
      server->stop();
    }
    std::printf("\n-- wire stage, %zu sessions over %zu shards (%s) --\n",
                opts.sessions, k_wire_shards,
                opts.connect_address.empty() ? "loopback unix socket"
                                             : opts.connect_address.c_str());
    std::printf("%12s %16s %16s\n", "", "socket", "in-process");
    std::printf("%12s %16.0f %16.0f\n", "sessions/s", wire.wire_sessions_per_s,
                wire.inproc_sessions_per_s);
    std::printf("%12s %16.0f %16.0f\n", "windows/s", wire.wire_windows_per_s,
                wire.inproc_windows_per_s);
    std::printf("%12s %13.2f ms %13.2f ms   (per-round ingest+flush)\n",
                "p50 latency", wire.wire_latency_p50_ms,
                wire.inproc_latency_p50_ms);
    std::printf("%12s %13.2f ms %13.2f ms\n", "p99 latency",
                wire.wire_latency_p99_ms, wire.inproc_latency_p99_ms);
  }

  ArtifactResult artifact;
  bool have_artifact = false;
  if (!opts.artifact_dir.empty()) {
    Matrix rows(64, windowed.features.cols());
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      const auto src = windowed.features.row(r % windowed.count());
      std::copy(src.begin(), src.end(), rows.row(r).begin());
    }
    artifact =
        artifact_stage(detector, stream_record, rows, opts.artifact_dir);
    have_artifact = true;
    std::printf("\n-- model artifact stage (%s) --\n",
                opts.artifact_dir.c_str());
    std::printf("save                 %10.3f ms\n", artifact.save_ms);
    std::printf("cold open (mmap)     %10.3f ms\n", artifact.cold_open_ms);
    std::printf("cached open          %10.3f ms\n", artifact.cached_open_ms);
    std::printf("compiled serving     %10.0f w/s\n", artifact.compiled_wps);
    std::printf("mapped serving       %10.0f w/s  (parity %s)\n",
                artifact.mapped_wps, artifact.parity ? "ok" : "FAILED");
    std::printf("mapped+simd serving  %10.0f w/s\n", artifact.mapped_simd_wps);
    std::printf("swap from disk cold  %10.3f ms   (replaced file, remap)\n",
                artifact.swap_cold_ms);
    std::printf("swap from disk warm  %10.3f ms   (registry cache hit)\n",
                artifact.swap_warm_ms);
    std::printf("first window after swap %7.3f ms  (live threads ingest)\n",
                artifact.first_window_after_swap_ms);
  }

  std::printf(
      "\nsingle   = per-window RealtimeDetector::predict_row loop\n"
      "batched  = engine path: gather + in-place z-score + tree-major forest\n"
      "compiled = flat SoA artifact (ml::CompiledForest), bit-identical\n"
      "           labels; speedup column is compiled vs batched\n"
      "engine   = end-to-end single-Engine streaming windows/sec\n"
      "service  = end-to-end DetectionService (feature extraction included);\n"
      "           the threads backend runs one worker per shard and scales\n"
      "           with cores, inline shows the single-thread baseline\n");

  if (!opts.json_path.empty()) {
    write_json(opts, inference, engine, services, have_wire ? &wire : nullptr,
               have_artifact ? &artifact : nullptr);
  }
  return 0;
}

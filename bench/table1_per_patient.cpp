// Reproduces TABLE I — classification performance per patient (§VI-A):
// per-patient median of the per-seizure mean delta (Eq. 1) and median of
// the per-seizure geometric-mean delta_norm (Eq. 2).
#include <array>

#include "bench_util.hpp"
#include "core/evaluation.hpp"

namespace {

// Paper values (Table I).
constexpr std::array<double, 9> k_paper_delta = {14.5, 53.2, 5.5, 15.9, 5.7,
                                                 11.5, 13.9, 3.2, 5.0};
constexpr std::array<double, 9> k_paper_norm = {99.0, 96.3, 99.6, 98.9, 99.6,
                                                99.2, 99.1, 99.8, 99.7};

}  // namespace

int main() {
  using namespace esl;
  bench::print_header(
      "TABLE I: per-patient a-posteriori labeling performance\n"
      "paper protocol: N samples/seizure, 30-60 min records, W = patient mean");

  const sim::CohortSimulator simulator;
  core::LabelingEvaluationConfig config;
  config.samples_per_seizure = bench::samples_per_seizure();
  std::fprintf(stderr, "samples per seizure: %zu (REPRO_SAMPLES to change)\n",
               config.samples_per_seizure);

  const core::CohortLabelingResult result =
      core::evaluate_labeling(simulator, config, bench::progress_meter);

  std::printf("%-4s | %-14s %-14s | %-14s %-14s\n", "ID", "delta paper(s)",
              "delta ours(s)", "norm paper(%)", "norm ours(%)");
  std::printf("-----+-------------------------------+----------------------------\n");
  for (std::size_t p = 0; p < result.patients.size(); ++p) {
    const auto& patient = result.patients[p];
    std::printf("%-4d | %-14.1f %-14.1f | %-14.1f %-14.2f\n",
                patient.patient_id, k_paper_delta[p], patient.median_delta_s,
                k_paper_norm[p], 100.0 * patient.median_delta_norm);
  }
  std::printf("\nshape checks:\n");
  int worst_id = 0;
  double worst = -1.0;
  for (const auto& patient : result.patients) {
    if (patient.median_delta_s > worst) {
      worst = patient.median_delta_s;
      worst_id = patient.patient_id;
    }
  }
  std::printf("  worst patient: %d (paper: 2)\n", worst_id);
  std::printf("  all patients' delta_norm > 95%%: %s (paper: yes)\n",
              [&] {
                for (const auto& patient : result.patients) {
                  if (patient.median_delta_norm <= 0.95) {
                    return "NO";
                  }
                }
                return "yes";
              }());
  return 0;
}

// Reproduces the §VI-A headline numbers:
//   total median delta           = 10.1 s      (paper)
//   total median delta_norm      = 0.9935
//   seizures within 15 / 30 / 60 s = 73.3 / 86.7 / 93.3 %
#include "bench_util.hpp"
#include "core/evaluation.hpp"

int main() {
  using namespace esl;
  bench::print_header("HEADLINE (SVI-A): labeling quality across 45 seizures");

  const sim::CohortSimulator simulator;
  core::LabelingEvaluationConfig config;
  config.samples_per_seizure = bench::samples_per_seizure();
  std::fprintf(stderr, "samples per seizure: %zu (REPRO_SAMPLES to change)\n",
               config.samples_per_seizure);

  const core::CohortLabelingResult result =
      core::evaluate_labeling(simulator, config, bench::progress_meter);

  std::printf("%-34s %-10s %-10s\n", "metric", "paper", "measured");
  std::printf("%-34s %-10s %-10.2f\n", "median delta (s)", "10.1",
              result.total_median_delta_s);
  std::printf("%-34s %-10s %-10.4f\n", "median delta_norm", "0.9935",
              result.total_median_delta_norm);
  std::printf("%-34s %-10s %-10.1f\n", "seizures within 15 s (%)", "73.3",
              100.0 * result.fraction_within(15.0));
  std::printf("%-34s %-10s %-10.1f\n", "seizures within 30 s (%)", "86.7",
              100.0 * result.fraction_within(30.0));
  std::printf("%-34s %-10s %-10.1f\n", "seizures within 60 s (%)", "93.3",
              100.0 * result.fraction_within(60.0));
  std::printf("\nclaim check: median label deviation below 1%% of the signal"
              " -> %s\n",
              result.total_median_delta_norm > 0.99 ? "holds" : "VIOLATED");
  return 0;
}

// Shared helpers for the paper-reproduction benches.
//
// Every bench prints the paper's published value next to the measured one
// so the reproduction can be judged line by line. Sample counts follow
// REPRO_SAMPLES (default 4; the paper used 100 — set REPRO_SAMPLES=100 to
// match, at ~100x the runtime).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace esl::bench {

/// Samples per seizure for the §VI-A protocol.
inline std::size_t samples_per_seizure() {
  if (const char* env = std::getenv("REPRO_SAMPLES")) {
    const long value = std::atol(env);
    if (value >= 1) {
      return static_cast<std::size_t>(value);
    }
  }
  return 4;
}

/// Stderr progress meter (keeps stdout clean for the table output).
inline void progress_meter(std::size_t done, std::size_t total) {
  if (done % 8 == 0 || done == total) {
    std::fprintf(stderr, "\r  [%zu/%zu]", done, total);
    if (done == total) {
      std::fprintf(stderr, "\n");
    }
  }
}

inline void print_header(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace esl::bench

// Reproduces FIG. 5 — percentage of total energy consumed by each task
// (worst case, one seizure per day). The paper shows a pie chart; we print
// the same series.
#include <cstdio>

#include "bench_util.hpp"
#include "platform/wearable.hpp"

int main() {
  using namespace esl;
  using namespace esl::platform;
  bench::print_header("FIG. 5: total energy consumption share per task");

  const LifetimeReport report = lifetime_full_system(WearableConfig{}, 1.0);
  const double paper_shares[4] = {9.47, 85.72, 4.77, 0.04};

  std::printf("%-24s %-12s %-12s\n", "Task", "paper (%)", "measured (%)");
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    std::printf("%-24s %-12.2f %-12.2f\n", report.rows[i].name.c_str(),
                paper_shares[i], 100.0 * report.rows[i].energy_share);
  }
  std::printf("\nshape check: supervised detection dominates labeling by "
              "%.1fx (paper: ~18x)\n",
              report.rows[1].energy_share / report.rows[2].energy_share);
  return 0;
}

// Ablation: MCU numeric profiles of Algorithm 1.
//
// The target platform (STM32L151, Cortex-M3) has no FPU, so deployments
// choose between software floats and fixed-point integers. This bench
// quantifies the labeling cost of each profile against the double
// reference on real pipeline data: argmax agreement, label deviation
// delta, and maximum curve divergence.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/statistics.hpp"
#include "core/deviation_metric.hpp"
#include "core/precision.hpp"
#include "features/extractor.hpp"
#include "features/normalize.hpp"
#include "features/paper_features.hpp"
#include "sim/cohort.hpp"

int main() {
  using namespace esl;
  using clock = std::chrono::steady_clock;
  bench::print_header(
      "ABLATION: numeric precision of the on-device distance engine");

  const sim::CohortSimulator simulator;
  const features::PaperFeatureExtractor extractor;

  struct Case {
    Matrix normalized;
    std::size_t window_points;
    signal::Interval truth;
    Seconds hop_seconds;
    Seconds w_seconds;
  };
  std::vector<Case> cases;
  for (const std::size_t p : {2u, 4u, 7u}) {
    const Seconds w = simulator.average_seizure_duration(p);
    const auto events = simulator.events_for_patient(p);
    for (std::size_t e = 0; e < 2 && e < events.size(); ++e) {
      // Shorter records keep the naive O(L^2 W F) schedule tractable.
      const auto record = simulator.synthesize_sample(events[e], 0, 600.0, 800.0);
      const auto windowed = features::extract_windowed_features(record, extractor);
      Case item;
      item.normalized = features::zscore_normalized(windowed.features);
      item.window_points = static_cast<std::size_t>(
          std::lround(w / windowed.hop_seconds));
      item.truth = record.seizures().front();
      item.hop_seconds = windowed.hop_seconds;
      item.w_seconds = w;
      cases.push_back(std::move(item));
    }
  }
  std::fprintf(stderr, "prepared %zu cases\n", cases.size());

  // Reference curves (double).
  std::vector<RealVector> reference;
  for (const auto& item : cases) {
    reference.push_back(core::distance_curve_profile(
        item.normalized, item.window_points, 4, core::NumericProfile::kFloat64));
  }

  std::printf("%-12s %-14s %-16s %-18s %-12s\n", "profile", "argmax match",
              "mean delta (s)", "max curve diverg.", "ms/case");
  for (const auto profile :
       {core::NumericProfile::kFloat64, core::NumericProfile::kFloat32,
        core::NumericProfile::kFixedQ8_8}) {
    std::size_t argmax_match = 0;
    Real worst_divergence = 0.0;
    RealVector deltas;
    const auto start = clock::now();
    for (std::size_t c = 0; c < cases.size(); ++c) {
      const RealVector curve = core::distance_curve_profile(
          cases[c].normalized, cases[c].window_points, 4, profile);
      const std::size_t y = core::distance_argmax(curve);
      if (y == core::distance_argmax(reference[c])) {
        ++argmax_match;
      }
      for (std::size_t i = 0; i < curve.size(); ++i) {
        worst_divergence = std::max(
            worst_divergence, std::abs(curve[i] - reference[c][i]));
      }
      const Seconds onset = static_cast<Seconds>(y) * cases[c].hop_seconds;
      deltas.push_back(core::deviation_seconds(
          cases[c].truth, {onset, onset + cases[c].w_seconds}));
    }
    const auto elapsed =
        std::chrono::duration<double, std::milli>(clock::now() - start).count();
    const char* name = profile == core::NumericProfile::kFloat64 ? "float64"
                       : profile == core::NumericProfile::kFloat32
                           ? "float32"
                           : "Q8.8";
    std::printf("%-12s %zu/%-12zu %-16.2f %-18.2e %-12.1f\n", name,
                argmax_match, cases.size(), stats::mean(deltas),
                worst_divergence, elapsed / static_cast<double>(cases.size()));
  }
  std::printf("\nexpected shape: all profiles agree on the argmax (identical\n"
              "labels); float32/Q8.8 curve divergence stays orders of\n"
              "magnitude below the ictal peak height, so the FPU-less MCU\n"
              "loses nothing.\n");
  return 0;
}
